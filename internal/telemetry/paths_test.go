package telemetry

import (
	"testing"

	"sos/internal/id"
	"sos/internal/msg"
)

// TestAggregatorRetransmitStorm replays every event of a realistic run
// many times over — the pathological version of an exporter hitting
// write timeouts on each frame — and requires every counter and series
// to match the single-delivery ground truth exactly.
func TestAggregatorRetransmitStorm(t *testing.T) {
	ref := msg.Ref{Author: alice, Seq: 1}
	run := []Event{
		{Type: EventCreated, Node: alice, At: at(0), Ref: ref, Kind: msg.KindPost, Created: at(0)},
		{Type: EventContactUp, Node: alice, At: at(1), Peer: bob},
		{Type: EventDisseminated, Node: bob, At: at(2), Ref: ref, Kind: msg.KindPost, Peer: alice, Hops: 1, Created: at(0)},
		{Type: EventDelivered, Node: bob, At: at(2), Ref: ref, Kind: msg.KindPost, Peer: alice, Hops: 1, Created: at(0)},
		{Type: EventContactDown, Node: alice, At: at(3), Peer: bob},
		{Type: EventEvicted, Node: bob, At: at(9), Ref: ref, Kind: msg.KindPost},
	}

	agg := NewAggregator()
	agg.TracePaths()
	// The storm: each event arrives, then is retransmitted in bursts
	// interleaved with later originals — worse than any real exporter,
	// which only ever re-sends its tail.
	const storms = 25
	for i, ev := range run {
		agg.Record(ev)
		for s := 0; s < storms; s++ {
			for _, replay := range run[:i+1] {
				agg.Record(replay)
			}
		}
	}

	st := agg.Stats()
	wantEvents := uint64(0)
	for i := range run {
		wantEvents += 1 + uint64(storms*(i+1))
	}
	if st.Events != wantEvents {
		t.Errorf("events = %d, want %d", st.Events, wantEvents)
	}
	if st.Duplicates != wantEvents-uint64(len(run)) {
		t.Errorf("duplicates = %d, want %d", st.Duplicates, wantEvents-uint64(len(run)))
	}
	if st.Created != 1 || st.Disseminated != 1 || st.Delivered != 1 || st.Evicted != 1 || st.Contacts != 2 {
		t.Errorf("type counters inflated: %+v", st)
	}
	col := agg.Collector()
	if got := col.CreatedCount(); got != 1 {
		t.Errorf("created = %d, want 1", got)
	}
	if got := col.Disseminations(); got != 1 {
		t.Errorf("disseminations = %d, want 1", got)
	}
	if got := len(col.Deliveries(0)); got != 1 {
		t.Errorf("deliveries = %d, want 1", got)
	}
	// The path index must also stay single-edged.
	p, ok := agg.PathTo(ref, bob)
	if !ok || len(p.Hops) != 1 {
		t.Fatalf("path to bob = %+v, %v; want exactly one hop", p, ok)
	}
	if p.Hops[0].From != alice || p.Hops[0].To != bob {
		t.Errorf("hop = %s→%s, want alice→bob", p.Hops[0].From, p.Hops[0].To)
	}
}

// TestPathReconstruction drives a three-hop relay chain (alice → bob →
// carol → dave) through the aggregator, out of order, and checks the
// full timeline comes back in transfer order.
func TestPathReconstruction(t *testing.T) {
	dave := id.NewUserID("dave")
	ref := msg.Ref{Author: alice, Seq: 2}
	agg := NewAggregator()
	agg.TracePaths()

	// Streams interleave arbitrarily: deliver to dave first.
	agg.Record(Event{Type: EventDelivered, Node: dave, At: at(9), Ref: ref, Kind: msg.KindPost, Peer: carol, Hops: 3, Created: at(0)})
	agg.Record(Event{Type: EventCreated, Node: alice, At: at(0), Ref: ref, Kind: msg.KindPost, Created: at(0)})
	agg.Record(Event{Type: EventDisseminated, Node: carol, At: at(6), Ref: ref, Kind: msg.KindPost, Peer: bob, Hops: 2, Created: at(0)})
	agg.Record(Event{Type: EventDisseminated, Node: bob, At: at(3), Ref: ref, Kind: msg.KindPost, Peer: alice, Hops: 1, Created: at(0)})

	p, ok := agg.PathTo(ref, dave)
	if !ok {
		t.Fatal("no path to dave")
	}
	want := []struct {
		from, to id.UserID
		hops     uint16
	}{
		{alice, bob, 1},
		{bob, carol, 2},
		{carol, dave, 3},
	}
	if len(p.Hops) != len(want) {
		t.Fatalf("path has %d hops, want %d: %+v", len(p.Hops), len(want), p.Hops)
	}
	for i, w := range want {
		h := p.Hops[i]
		if h.From != w.from || h.To != w.to || h.Hops != w.hops {
			t.Errorf("hop %d = %s→%s (%d), want %s→%s (%d)",
				i, h.From, h.To, h.Hops, w.from, w.to, w.hops)
		}
	}
	if !p.Hops[0].At.Before(p.Hops[2].At) {
		t.Error("path timeline not in transfer order")
	}

	// A later re-receipt (tombstone expired, bob re-sends to carol) must
	// not rewrite the first-spread history.
	agg.Record(Event{Type: EventDisseminated, Node: carol, At: at(20), Ref: ref, Kind: msg.KindPost, Peer: dave, Hops: 9, Created: at(0)})
	p2, _ := agg.PathTo(ref, dave)
	if p2.Hops[1].From != bob || !p2.Hops[1].At.Equal(p.Hops[1].At) {
		t.Errorf("re-receipt rewrote history: %+v", p2.Hops[1])
	}

	// Unknown destination and untraced message.
	if _, ok := agg.PathTo(ref, id.NewUserID("nobody")); ok {
		t.Error("path to a node that never received the message")
	}
	if _, ok := agg.PathTo(msg.Ref{Author: bob, Seq: 99}, dave); ok {
		t.Error("path for an untraced message")
	}
	if refs := agg.TracedRefs(); len(refs) != 1 || refs[0] != ref {
		t.Errorf("TracedRefs = %v, want [%v]", refs, ref)
	}
}

// TestPathTracingDisabled checks tracing is pay-for-play: without
// TracePaths the aggregator keeps no receipt index.
func TestPathTracingDisabled(t *testing.T) {
	ref := msg.Ref{Author: alice, Seq: 1}
	agg := NewAggregator()
	agg.Record(Event{Type: EventDelivered, Node: bob, At: at(2), Ref: ref, Kind: msg.KindPost, Peer: alice, Hops: 1, Created: at(0)})
	if _, ok := agg.PathTo(ref, bob); ok {
		t.Error("PathTo returned a path with tracing disabled")
	}
	if refs := agg.TracedRefs(); len(refs) != 0 {
		t.Errorf("TracedRefs = %v, want empty", refs)
	}
}

// TestPathIndexRotation exercises the generational bound: once more than
// maxTracedMessages distinct messages are traced, the oldest generation
// is still consultable (pathsPrev) and the newest always is.
func TestPathIndexRotation(t *testing.T) {
	agg := NewAggregator()
	agg.TracePaths()
	// Shrink the universe: synthesize refs by sequence number. Crossing
	// the threshold once is enough; use a small slice of the space.
	total := maxTracedMessages + 10
	for i := 0; i < total; i++ {
		ref := msg.Ref{Author: alice, Seq: uint64(i + 1)}
		agg.Record(Event{Type: EventDelivered, Node: bob, At: at(i), Ref: ref, Kind: msg.KindPost, Peer: alice, Hops: 1, Created: at(0)})
	}
	// The newest message is always traceable.
	newest := msg.Ref{Author: alice, Seq: uint64(total)}
	if _, ok := agg.PathTo(newest, bob); !ok {
		t.Error("newest message not traceable after rotation")
	}
	// A message from the rotated-out generation is still found via
	// pathsPrev (single rotation so far).
	if _, ok := agg.PathTo(msg.Ref{Author: alice, Seq: 1}, bob); !ok {
		t.Error("previous generation not consulted")
	}
}

// TestTraceBoundedMemory sanity-checks the rotation keeps the live map
// bounded rather than growing with run length.
func TestTraceBoundedMemory(t *testing.T) {
	agg := NewAggregator()
	agg.TracePaths()
	for i := 0; i < 3*maxTracedMessages; i++ {
		ref := msg.Ref{Author: alice, Seq: uint64(i + 1)}
		agg.Record(Event{Type: EventDelivered, Node: bob, At: at(i), Ref: ref, Kind: msg.KindPost, Peer: alice, Hops: 1, Created: at(0)})
	}
	agg.mu.Lock()
	live := len(agg.paths)
	agg.mu.Unlock()
	if live > maxTracedMessages {
		t.Errorf("live path index holds %d messages, bound is %d", live, maxTracedMessages)
	}
}
