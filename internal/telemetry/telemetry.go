// Package telemetry is the live instrumentation layer of the in-vivo
// lab. The paper's evaluation quantities (§VI: delay CDFs, delivery
// ratios, dissemination counts) were collected from a real deployment by
// a remote-monitoring platform; this package is that platform's wire
// protocol and plumbing for the reproduction. A node-side Observer turns
// core.Middleware lifecycle events into compact binary Events, an
// Exporter streams them to a collector over TCP (buffered, reconnecting,
// drop-counting — a phone-grade link, not a database write), and an
// Aggregator merges the per-node streams back into a metrics.Collector
// so the §VI series are computed live across a distributed fleet.
package telemetry

import (
	"encoding/binary"
	"fmt"
	"time"

	"sos/internal/id"
	"sos/internal/msg"
)

// EventType enumerates the lifecycle events a node reports.
type EventType uint8

// Event types. Message events carry Ref and Kind; contact events carry
// Peer. EventDelivered additionally carries the message's creation time
// and hop count, so a delivery record is self-contained even when the
// author's stream lags.
const (
	// EventCreated: the node authored and stored a new message.
	EventCreated EventType = iota + 1
	// EventDisseminated: the node received and stored a remote message —
	// one user-to-user transfer.
	EventDisseminated
	// EventDelivered: the received message's author is one the node
	// subscribes to (the paper's delivery).
	EventDelivered
	// EventEvicted: the node's storage engine dropped a message.
	EventEvicted
	// EventContactUp / EventContactDown: an authenticated encounter
	// began / ended.
	EventContactUp
	EventContactDown
)

// String names the event type for logs.
func (t EventType) String() string {
	switch t {
	case EventCreated:
		return "created"
	case EventDisseminated:
		return "disseminated"
	case EventDelivered:
		return "delivered"
	case EventEvicted:
		return "evicted"
	case EventContactUp:
		return "contact-up"
	case EventContactDown:
		return "contact-down"
	default:
		return fmt.Sprintf("event(%d)", uint8(t))
	}
}

func (t EventType) valid() bool { return t >= EventCreated && t <= EventContactDown }

// Event is one telemetry record. All fields ride in every encoding (the
// record is fixed-size); unused ones are zero for a given type.
type Event struct {
	// Type says what happened.
	Type EventType
	// Node is the reporting node's user identifier.
	Node id.UserID
	// At is when it happened, by the reporting node's clock.
	At time.Time
	// Ref identifies the message (message events).
	Ref msg.Ref
	// Kind is the message's kind (message events). Aggregators track
	// only posts — the workload — and use Kind to discard social-graph
	// chatter without waiting for a creation record that never comes.
	Kind msg.Kind
	// Peer is the encountered user (contact events) or the sender the
	// message arrived from (dissemination/delivery events).
	Peer id.UserID
	// Hops is the message's device-to-device transfer count on arrival.
	Hops uint16
	// Created is the message's authored timestamp (creation/delivery
	// events), carried so delay computation never needs a join against
	// another node's stream.
	Created time.Time
}

// EventSize is the exact encoded size of one Event.
const EventSize = 1 + id.UserIDLen + 8 + id.UserIDLen + 8 + 1 + id.UserIDLen + 2 + 8

// Codec errors.
var (
	ErrBadEvent = fmt.Errorf("telemetry: malformed event")
)

// Encode appends the fixed-size binary form of e to dst and returns the
// extended slice. Times are truncated to nanosecond Unix representation;
// the zero time encodes as 0 and decodes back to the zero time.
func (e Event) Encode(dst []byte) []byte {
	dst = append(dst, byte(e.Type))
	dst = append(dst, e.Node[:]...)
	dst = binary.BigEndian.AppendUint64(dst, encodeTime(e.At))
	dst = append(dst, e.Ref.Author[:]...)
	dst = binary.BigEndian.AppendUint64(dst, e.Ref.Seq)
	dst = append(dst, byte(e.Kind))
	dst = append(dst, e.Peer[:]...)
	dst = binary.BigEndian.AppendUint16(dst, e.Hops)
	dst = binary.BigEndian.AppendUint64(dst, encodeTime(e.Created))
	return dst
}

// DecodeEvent parses one encoded Event. The buffer must be exactly
// EventSize bytes with a known event type.
func DecodeEvent(buf []byte) (Event, error) {
	if len(buf) != EventSize {
		return Event{}, fmt.Errorf("%w: %d bytes, want %d", ErrBadEvent, len(buf), EventSize)
	}
	var e Event
	e.Type = EventType(buf[0])
	if !e.Type.valid() {
		return Event{}, fmt.Errorf("%w: unknown type %d", ErrBadEvent, buf[0])
	}
	off := 1
	off += copy(e.Node[:], buf[off:])
	e.At = decodeTime(binary.BigEndian.Uint64(buf[off:]))
	off += 8
	off += copy(e.Ref.Author[:], buf[off:])
	e.Ref.Seq = binary.BigEndian.Uint64(buf[off:])
	off += 8
	e.Kind = msg.Kind(buf[off])
	off++
	off += copy(e.Peer[:], buf[off:])
	e.Hops = binary.BigEndian.Uint16(buf[off:])
	off += 2
	e.Created = decodeTime(binary.BigEndian.Uint64(buf[off:]))
	return e, nil
}

// encodeTime maps a time to its Unix nanosecond count, reserving 0 for
// the zero time (the Unix epoch itself encodes as 1 ns later — an error
// nine orders of magnitude below beacon granularity).
func encodeTime(t time.Time) uint64 {
	if t.IsZero() {
		return 0
	}
	n := t.UnixNano()
	if n == 0 {
		n = 1
	}
	return uint64(n)
}

func decodeTime(n uint64) time.Time {
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, int64(n))
}

// Sink consumes telemetry events. Aggregator consumes them in-process;
// Exporter ships them to a remote Aggregator over TCP. Record must be
// safe for concurrent use and must not block.
type Sink interface {
	Record(ev Event)
}
