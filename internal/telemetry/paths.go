package telemetry

import (
	"sort"
	"time"

	"sos/internal/id"
	"sos/internal/msg"
)

// Hop is one edge of a message's dissemination path: the message moved
// From → To at time At, arriving with the given device-to-device hop
// count. The first hop of a path has From equal to the author (the
// creation record contributes the path root with From empty).
type Hop struct {
	From id.UserID
	To   id.UserID
	At   time.Time
	Hops uint16
}

// Path is one message's reconstructed relay chain from its author to a
// destination node, in transfer order.
type Path struct {
	Ref  msg.Ref
	Dest id.UserID
	Hops []Hop
}

// receipt records the first observed arrival of a message at a node:
// who handed it over and when. The author's creation record is stored
// with an empty from, terminating backward walks.
type receipt struct {
	from id.UserID
	at   time.Time
	hops uint16
}

// maxTracedMessages bounds each generation of the path index. Tracing
// keeps one receipt per (message, node) pair, so a generation costs
// O(messages × fleet); when the current generation fills it rotates,
// exactly like the retransmit filter, keeping long-lived aggregators
// bounded while preserving paths for everything recent.
const maxTracedMessages = 1 << 14

// TracePaths enables hop-by-hop path tracing. Must be called before
// events flow; tracing is off by default because the receipt index is
// the one aggregator structure whose size scales with messages × nodes.
func (a *Aggregator) TracePaths() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.paths = make(map[msg.Ref]map[id.UserID]receipt)
}

// traceLocked feeds one ingested (non-duplicate) event into the receipt
// index. Only the first arrival per (message, node) is kept: later
// re-receipts (after an eviction tombstone expires) do not rewrite
// history, so reconstructed chains reflect how the message actually
// first spread.
func (a *Aggregator) traceLocked(ev Event) {
	if a.paths == nil {
		return
	}
	var from id.UserID
	switch ev.Type {
	case EventCreated:
		// Root: the author holds the message with no upstream.
	case EventDisseminated, EventDelivered:
		from = ev.Peer
	default:
		return
	}
	byNode, ok := a.paths[ev.Ref]
	if !ok {
		if len(a.paths) >= maxTracedMessages {
			a.pathsPrev = a.paths
			a.paths = make(map[msg.Ref]map[id.UserID]receipt, maxTracedMessages/4)
		}
		byNode = make(map[id.UserID]receipt, 4)
		a.paths[ev.Ref] = byNode
	}
	if prev, ok := byNode[ev.Node]; ok && !prev.at.After(ev.At) {
		return
	}
	byNode[ev.Node] = receipt{from: from, at: ev.At, hops: ev.Hops}
}

// PathTo reconstructs the relay chain that first carried ref to dest by
// walking the receipt index backward from dest until it reaches the
// author (a receipt with no upstream) or runs out of records — streams
// may be merged mid-run, so a chain can be truncated at the oldest node
// whose receipt predates tracing. A cycle guard caps the walk at the
// fleet size. Returns ok=false when tracing is off or dest never
// received ref.
func (a *Aggregator) PathTo(ref msg.Ref, dest id.UserID) (Path, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	byNode := a.paths[ref]
	if byNode == nil {
		byNode = a.pathsPrev[ref]
	}
	if byNode == nil {
		return Path{}, false
	}
	rc, ok := byNode[dest]
	if !ok {
		return Path{}, false
	}
	p := Path{Ref: ref, Dest: dest}
	visited := map[id.UserID]bool{dest: true}
	node := dest
	for rc.from != (id.UserID{}) {
		p.Hops = append(p.Hops, Hop{From: rc.from, To: node, At: rc.at, Hops: rc.hops})
		if visited[rc.from] {
			break // defensive: clock skew produced a cycle
		}
		visited[rc.from] = true
		node = rc.from
		rc, ok = byNode[node]
		if !ok {
			break // upstream receipt predates tracing
		}
	}
	// The walk collected edges destination-first; flip into transfer
	// order, author outward.
	for i, j := 0, len(p.Hops)-1; i < j; i, j = i+1, j-1 {
		p.Hops[i], p.Hops[j] = p.Hops[j], p.Hops[i]
	}
	return p, true
}

// TracedRefs returns every message in the live path index, in
// deterministic order — the iteration surface for report builders.
func (a *Aggregator) TracedRefs() []msg.Ref {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]msg.Ref, 0, len(a.paths))
	for ref := range a.paths {
		out = append(out, ref)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}
