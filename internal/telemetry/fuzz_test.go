package telemetry

import (
	"bytes"
	"testing"

	"sos/internal/id"
	"sos/internal/msg"
	"time"
)

// FuzzTelemetryEvent hammers the event codec: arbitrary bytes must never
// panic the decoder, and anything that decodes must re-encode to the
// identical wire form (the codec is canonical).
func FuzzTelemetryEvent(f *testing.F) {
	seed := Event{
		Type: EventDelivered, Node: id.NewUserID("n1"),
		At: time.Unix(1700000000, 42), Ref: msg.Ref{Author: id.NewUserID("n2"), Seq: 7},
		Kind: msg.KindPost, Peer: id.NewUserID("n2"), Hops: 2,
		Created: time.Unix(1699999999, 0),
	}
	f.Add(seed.Encode(nil))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, EventSize))
	f.Add(make([]byte, EventSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		ev, err := DecodeEvent(data)
		if err != nil {
			return
		}
		out := ev.Encode(nil)
		if !bytes.Equal(out, data) {
			t.Fatalf("re-encode mismatch:\n in %x\nout %x", data, out)
		}
		if _, err := DecodeEvent(out); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}
