package telemetry

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"sos/internal/id"
	"sos/internal/metrics"
	"sos/internal/msg"
	"sos/internal/wire"
)

// AggregatorStats counts what the aggregator has seen.
type AggregatorStats struct {
	// Events counts every ingested event.
	Events uint64
	// Created, Disseminated, Delivered, Evicted, Contacts break Events
	// down (contacts count both up and down edges).
	Created      uint64
	Disseminated uint64
	Delivered    uint64
	Evicted      uint64
	Contacts     uint64
	// Duplicates counts retransmitted events discarded by the
	// idempotence filter (an exporter retransmits after a write timeout
	// it cannot distinguish from a lost frame).
	Duplicates uint64
	// Nodes counts distinct reporting nodes.
	Nodes int
}

// Aggregator merges telemetry event streams into a metrics.Collector,
// recomputing the paper's §VI quantities live across a distributed
// fleet. It tracks posts — the experiment workload — and tolerates
// cross-stream reordering and even a lost creation record: every
// dissemination/delivery event carries the message's authored timestamp,
// so the aggregator registers the creation from whichever record arrives
// first and the merged series match what a single collector observing
// every node directly would have recorded.
//
// Aggregator is an in-process Sink; Server feeds it from remote
// exporters over TCP. Both may be used at once.
type Aggregator struct {
	mu  sync.Mutex
	col *metrics.Collector
	// seen and seenPrev make ingestion idempotent: an exporter that hits
	// a write timeout cannot tell a lost frame from a delivered one, so
	// it retransmits, and a second arrival must not inflate any counter.
	// The key is the full event identity including the reporting node's
	// nanosecond timestamp — identical means retransmitted, while a
	// genuine repeat (a contact re-forming, a node re-receiving a
	// message whose eviction tombstone was forgotten) carries a fresh
	// clock reading. Retransmits trail the original by at most a few
	// timeouts, so the filter only needs a bounded look-back: when seen
	// fills it rotates into seenPrev (generational pruning), keeping a
	// long-lived collector's memory O(maxSeenEvents), not O(run length).
	seen     map[eventKey]bool
	seenPrev map[eventKey]bool
	nodes    map[id.UserID]bool
	stats    AggregatorStats
	onEvent  func(Event)
	// paths/pathsPrev hold the hop-by-hop receipt index behind PathTo;
	// nil until TracePaths enables tracing. Same generational-rotation
	// bounding as seen/seenPrev.
	paths     map[msg.Ref]map[id.UserID]receipt
	pathsPrev map[msg.Ref]map[id.UserID]receipt
}

// maxSeenEvents bounds each generation of the retransmit filter.
const maxSeenEvents = 1 << 17

// eventKey identifies one real-world event.
type eventKey struct {
	t    EventType
	node id.UserID
	ref  msg.Ref
	peer id.UserID
	at   int64
}

var _ Sink = (*Aggregator)(nil)

// NewAggregator builds an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{
		col:   metrics.NewCollector(),
		seen:  make(map[eventKey]bool),
		nodes: make(map[id.UserID]bool),
	}
}

// OnEvent registers a callback invoked for every ingested event (live
// progress displays). It must be set before events flow and must not
// call back into the aggregator.
func (a *Aggregator) OnEvent(fn func(Event)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.onEvent = fn
}

// Collector returns the merged collector. It is live — reading it mid-
// experiment gives a consistent snapshot of everything ingested so far.
func (a *Aggregator) Collector() *metrics.Collector { return a.col }

// Stats snapshots the aggregation counters.
func (a *Aggregator) Stats() AggregatorStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.stats
	st.Nodes = len(a.nodes)
	return st
}

// Nodes returns the distinct reporting nodes in deterministic order.
func (a *Aggregator) Nodes() []id.UserID {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]id.UserID, 0, len(a.nodes))
	for n := range a.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Record implements Sink: ingest one event.
func (a *Aggregator) Record(ev Event) {
	a.mu.Lock()
	a.stats.Events++
	a.nodes[ev.Node] = true
	key := eventKey{t: ev.Type, node: ev.Node, ref: ev.Ref, peer: ev.Peer, at: ev.At.UnixNano()}
	if a.seen[key] || a.seenPrev[key] {
		// A retransmission is swallowed whole — it does not reach the
		// collector, the counters, or the progress callback.
		a.stats.Duplicates++
		a.mu.Unlock()
		return
	}
	if len(a.seen) >= maxSeenEvents {
		a.seenPrev = a.seen
		a.seen = make(map[eventKey]bool, maxSeenEvents/4)
	}
	a.seen[key] = true
	a.traceLocked(ev)
	switch ev.Type {
	case EventCreated:
		a.stats.Created++
		a.trackLocked(ev)
	case EventEvicted:
		// The global drop count does not need the creation record, and
		// a tracked drop's attribution only needs the creation to be
		// registered first — virtually always true, since a message must
		// disseminate (registering it below) before a peer can evict it.
		a.stats.Evicted++
		a.col.Evicted(ev.Ref)
	case EventDisseminated:
		a.stats.Disseminated++
		a.trackLocked(ev)
		a.col.Disseminated(ev.Ref)
	case EventDelivered:
		a.stats.Delivered++
		a.trackLocked(ev)
		a.col.Delivered(ev.Ref, ev.Node, ev.At, ev.Hops)
	case EventContactUp, EventContactDown:
		a.stats.Contacts++
	}
	fn := a.onEvent
	a.mu.Unlock()
	if fn != nil {
		fn(ev)
	}
}

// trackLocked registers a workload message's creation with the
// collector. Dissemination and delivery events carry the authored
// timestamp precisely so this works from whichever record arrives first:
// streams interleave arbitrarily, and the author's creation frame may
// even be lost outright, without costing the merged series anything.
// Social-graph chatter (follows etc.) is never tracked, so those events
// fall through to the collector's no-op paths.
func (a *Aggregator) trackLocked(ev Event) {
	if ev.Kind != msg.KindPost || ev.Created.IsZero() {
		return
	}
	a.col.MessageCreated(ev.Ref, ev.Created)
}

// Server accepts exporter connections and feeds their event streams into
// an Aggregator — the lab's collector endpoint. One goroutine per
// connection reads length-prefixed event frames until the exporter closes
// its end.
type Server struct {
	ln  net.Listener
	agg *Aggregator

	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool

	accepted uint64
	wg       sync.WaitGroup
	logf     func(format string, args ...any)
}

// NewServer listens on addr (e.g. "127.0.0.1:0") and serves agg. logf
// may be nil.
func NewServer(addr string, agg *Aggregator, logf func(format string, args ...any)) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listening on %s: %w", addr, err)
	}
	s := &Server{ln: ln, agg: agg, conns: make(map[net.Conn]bool), logf: logf}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address, for exporters to dial.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Accepted returns how many exporter connections have been admitted.
func (s *Server) Accepted() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.accepted
}

// Close stops accepting, waits for connected exporters to finish their
// streams (bounded by timeout, then forcibly), and returns. Call it
// after the exporters have flushed and closed so no frame is lost.
func (s *Server) Close(timeout time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	select {
	case <-done:
	case <-time.After(timeout):
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
	}
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.accepted++
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(conn)
	}
}

// serve ingests one exporter's stream until EOF or a malformed frame.
func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		frame, err := wire.ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && s.logf != nil {
				s.logf("telemetry: stream from %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		ev, err := DecodeEvent(frame)
		if err != nil {
			if s.logf != nil {
				s.logf("telemetry: bad event from %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		s.agg.Record(ev)
	}
}
