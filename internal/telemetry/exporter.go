package telemetry

import (
	"io"
	"net"
	"sync"
	"time"

	"sos/internal/obs/span"
	"sos/internal/wire"
)

// Exporter defaults.
const (
	DefaultExporterBuffer = 4096
	DefaultRetryInterval  = 250 * time.Millisecond
	DefaultDialTimeout    = 2 * time.Second
	DefaultWriteTimeout   = 5 * time.Second
	DefaultFlushTimeout   = 5 * time.Second
)

// ExporterOptions tunes an Exporter. The zero value selects the defaults.
type ExporterOptions struct {
	// Buffer is the event queue depth; when the queue is full (collector
	// unreachable or slow) new events are dropped and counted, never
	// blocking the middleware.
	Buffer int
	// RetryInterval is the pause between reconnection attempts.
	RetryInterval time.Duration
	// DialTimeout bounds one connection attempt.
	DialTimeout time.Duration
	// WriteTimeout bounds one frame write; a stalled collector counts as
	// a broken connection.
	WriteTimeout time.Duration
	// FlushTimeout bounds how long Close waits for queued events to
	// drain before abandoning them (counted as drops).
	FlushTimeout time.Duration
	// Logf, when set, receives debug logging.
	Logf func(format string, args ...any)
	// Tracer, when set, records export-plane spans (collector dials,
	// the Close flush) into the node's flight recorder.
	Tracer *span.Tracer
}

func (o ExporterOptions) withDefaults() ExporterOptions {
	if o.Buffer <= 0 {
		o.Buffer = DefaultExporterBuffer
	}
	if o.RetryInterval <= 0 {
		o.RetryInterval = DefaultRetryInterval
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = DefaultDialTimeout
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = DefaultWriteTimeout
	}
	if o.FlushTimeout <= 0 {
		o.FlushTimeout = DefaultFlushTimeout
	}
	return o
}

// ExporterStats counts exporter events.
type ExporterStats struct {
	// Recorded counts events handed to Record.
	Recorded uint64
	// Sent counts events written to the collector.
	Sent uint64
	// Dropped counts events lost to a full queue or an abandoned flush.
	Dropped uint64
	// Reconnects counts broken-and-redialed connections (the first
	// successful dial is not a reconnect).
	Reconnects uint64
}

// Exporter streams telemetry events to a remote Aggregator server over
// TCP. Record never blocks: events queue in a bounded buffer, a
// background goroutine writes them as length-prefixed frames, and the
// connection is redialed with backoff whenever it breaks — on a phone in
// the field the collector link is opportunistic too. Overflow drops the
// newest event and counts it, so a dead collector costs memory-bounded
// telemetry, never middleware progress.
type Exporter struct {
	addr string
	opts ExporterOptions

	mu     sync.Mutex
	closed bool
	stats  ExporterStats
	conn   net.Conn // live connection, force-closed on abandoned flush

	ch   chan Event
	stop chan struct{} // abandons dial/flush loops
	done chan struct{} // loop exited

	tracer *span.Tracer
	track  uint64
}

var _ Sink = (*Exporter)(nil)

// NewExporter starts an exporter shipping to the collector at addr. The
// connection is established lazily, so a collector that comes up late
// only delays events (up to the buffer), it does not fail the node.
func NewExporter(addr string, opts ExporterOptions) *Exporter {
	e := &Exporter{
		addr: addr,
		opts: opts.withDefaults(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	e.ch = make(chan Event, e.opts.Buffer)
	if e.opts.Tracer != nil {
		e.tracer = e.opts.Tracer
		e.track = e.tracer.Track("telemetry")
	}
	go e.loop()
	return e
}

// Record implements Sink: enqueue without blocking, drop on overflow.
func (e *Exporter) Record(ev Event) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats.Recorded++
	if e.closed {
		e.stats.Dropped++
		return
	}
	select {
	case e.ch <- ev:
	default:
		e.stats.Dropped++
	}
}

// Stats snapshots the counters.
func (e *Exporter) Stats() ExporterStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// QueueDepth reports the number of events buffered and not yet written
// to the collector. A depth pinned at capacity means the export link is
// slower than the event rate and drops are imminent.
func (e *Exporter) QueueDepth() int { return len(e.ch) }

// Close stops accepting events, flushes the queue, waits for the
// collector to finish ingesting the stream (each phase bounded by
// FlushTimeout), and closes the connection. On a clean return every
// sent event has been read by the collector; events that cannot be
// flushed in time are dropped and counted.
func (e *Exporter) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		<-e.done
		return nil
	}
	e.closed = true
	close(e.ch)
	e.mu.Unlock()

	sp := e.tracer.Start(e.track, "telemetry.flush")
	sp.Attr("queued", uint64(len(e.ch)))
	select {
	case <-e.done:
		sp.Attr("ok", 1)
	case <-time.After(e.opts.FlushTimeout):
		sp.Attr("ok", 0)
		close(e.stop)
		e.mu.Lock()
		if e.conn != nil {
			e.conn.Close() // unblock a stalled write
		}
		e.mu.Unlock()
		<-e.done
	}
	sp.End()
	return nil
}

// loop drains the queue into the connection, redialing as needed.
func (e *Exporter) loop() {
	defer close(e.done)
	var buf []byte
	for ev := range e.ch {
		buf = ev.Encode(buf[:0])
		if !e.send(buf) {
			// Shipping was abandoned: count this and everything still
			// queued as dropped, then exit.
			dropped := uint64(1)
			for range e.ch {
				dropped++
			}
			e.mu.Lock()
			e.stats.Dropped += dropped
			e.mu.Unlock()
			return
		}
		e.mu.Lock()
		e.stats.Sent++
		e.mu.Unlock()
	}
	e.mu.Lock()
	conn := e.conn
	e.conn = nil
	e.mu.Unlock()
	if conn == nil {
		return
	}
	// Graceful shutdown barrier: written frames may still sit in kernel
	// buffers — or the whole connection in the listener's accept backlog
	// — so half-close and wait (bounded) for the collector to finish
	// reading the stream and close its end. When this returns cleanly,
	// every sent event has been ingested.
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite()
		tc.SetReadDeadline(time.Now().Add(e.opts.FlushTimeout))
		io.Copy(io.Discard, tc)
	}
	conn.Close()
}

// send writes one encoded event, dialing and redialing until it succeeds
// or the exporter is told to stop; it reports whether the frame was sent.
func (e *Exporter) send(frame []byte) bool {
	for attempt := 0; ; attempt++ {
		conn := e.connect(attempt > 0)
		if conn == nil {
			return false
		}
		conn.SetWriteDeadline(time.Now().Add(e.opts.WriteTimeout))
		if err := wire.WriteFrame(conn, frame); err == nil {
			return true
		} else if e.opts.Logf != nil {
			e.opts.Logf("telemetry: write to %s failed: %v", e.addr, err)
		}
		conn.Close()
		e.mu.Lock()
		e.conn = nil
		e.mu.Unlock()
		// Back off before retrying the frame: a peer that accepts dials
		// but rejects writes would otherwise spin this loop hot.
		select {
		case <-e.stop:
			return false
		case <-time.After(e.opts.RetryInterval):
		}
	}
}

// connect returns the live connection, dialing (with retries) if there is
// none. It returns nil when the exporter is stopped mid-dial.
func (e *Exporter) connect(redial bool) net.Conn {
	e.mu.Lock()
	if e.conn != nil {
		conn := e.conn
		e.mu.Unlock()
		return conn
	}
	e.mu.Unlock()
	for {
		select {
		case <-e.stop:
			return nil
		default:
		}
		sp := e.tracer.Start(e.track, "telemetry.connect")
		conn, err := net.DialTimeout("tcp", e.addr, e.opts.DialTimeout)
		if err == nil {
			sp.Attr("ok", 1)
			sp.End()
			e.mu.Lock()
			e.conn = conn
			if redial {
				e.stats.Reconnects++
			}
			e.mu.Unlock()
			return conn
		}
		sp.Attr("ok", 0)
		sp.End()
		if e.opts.Logf != nil {
			e.opts.Logf("telemetry: dial %s: %v", e.addr, err)
		}
		select {
		case <-e.stop:
			return nil
		case <-time.After(e.opts.RetryInterval):
		}
	}
}
