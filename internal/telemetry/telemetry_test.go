package telemetry

import (
	"testing"
	"time"

	"sos/internal/id"
	"sos/internal/metrics"
	"sos/internal/msg"
)

var (
	alice = id.NewUserID("alice")
	bob   = id.NewUserID("bob")
	carol = id.NewUserID("carol")
)

func at(sec int) time.Time { return time.Unix(1700000000+int64(sec), 123456789) }

func TestEventRoundTrip(t *testing.T) {
	events := []Event{
		{Type: EventCreated, Node: alice, At: at(0), Ref: msg.Ref{Author: alice, Seq: 1},
			Kind: msg.KindPost, Created: at(0)},
		{Type: EventDisseminated, Node: bob, At: at(5), Ref: msg.Ref{Author: alice, Seq: 1},
			Kind: msg.KindPost, Peer: alice, Hops: 1, Created: at(0)},
		{Type: EventDelivered, Node: bob, At: at(5), Ref: msg.Ref{Author: alice, Seq: 1},
			Kind: msg.KindPost, Peer: alice, Hops: 3, Created: at(0)},
		{Type: EventEvicted, Node: carol, At: at(9), Ref: msg.Ref{Author: alice, Seq: 7},
			Kind: msg.KindFollow},
		{Type: EventContactUp, Node: alice, At: at(2), Peer: bob},
		{Type: EventContactDown, Node: alice, At: at(3), Peer: bob},
	}
	for _, want := range events {
		buf := want.Encode(nil)
		if len(buf) != EventSize {
			t.Fatalf("%s: encoded to %d bytes, want %d", want.Type, len(buf), EventSize)
		}
		got, err := DecodeEvent(buf)
		if err != nil {
			t.Fatalf("%s: DecodeEvent: %v", want.Type, err)
		}
		if got.Type != want.Type || got.Node != want.Node || got.Ref != want.Ref ||
			got.Kind != want.Kind || got.Peer != want.Peer || got.Hops != want.Hops {
			t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
		}
		if !got.At.Equal(want.At) || !got.Created.Equal(want.Created) {
			t.Fatalf("%s: time mismatch: got at=%v created=%v, want at=%v created=%v",
				want.Type, got.At, got.Created, want.At, want.Created)
		}
		if want.Created.IsZero() != got.Created.IsZero() {
			t.Fatalf("%s: zero-time not preserved", want.Type)
		}
	}
}

func TestDecodeEventRejectsGarbage(t *testing.T) {
	if _, err := DecodeEvent(nil); err == nil {
		t.Fatal("DecodeEvent(nil) succeeded")
	}
	if _, err := DecodeEvent(make([]byte, EventSize-1)); err == nil {
		t.Fatal("short buffer accepted")
	}
	if _, err := DecodeEvent(make([]byte, EventSize+1)); err == nil {
		t.Fatal("long buffer accepted")
	}
	bad := Event{Type: EventCreated, Node: alice, At: at(0)}.Encode(nil)
	bad[0] = 0xEE
	if _, err := DecodeEvent(bad); err == nil {
		t.Fatal("unknown type accepted")
	}
}

// TestAggregatorReordering is the distributed-collection property: a
// post's dissemination, delivery, and eviction events arriving before the
// author's creation record (streams interleave arbitrarily; the creation
// frame may even be lost) must land in the collector exactly as if they
// had arrived in causal order, because every record carries the authored
// timestamp.
func TestAggregatorReordering(t *testing.T) {
	ref := msg.Ref{Author: alice, Seq: 1}
	agg := NewAggregator()

	// Out of order: dissemination and delivery before the creation
	// record. Both apply immediately — the carried Created timestamp
	// self-registers the message.
	agg.Record(Event{Type: EventDisseminated, Node: bob, At: at(5), Ref: ref, Kind: msg.KindPost, Hops: 1, Created: at(0)})
	agg.Record(Event{Type: EventDelivered, Node: bob, At: at(5), Ref: ref, Kind: msg.KindPost, Hops: 1, Created: at(0)})

	col := agg.Collector()
	if got := col.CreatedCount(); got != 1 {
		t.Fatalf("created = %d, want 1 (self-registered from delivery record)", got)
	}

	// The author's creation record arrives late; an eviction after it is
	// attributed to the workload.
	agg.Record(Event{Type: EventCreated, Node: alice, At: at(0), Ref: ref, Kind: msg.KindPost, Created: at(0)})
	agg.Record(Event{Type: EventEvicted, Node: carol, At: at(6), Ref: ref, Kind: msg.KindPost})

	if got := col.CreatedCount(); got != 1 {
		t.Fatalf("created = %d, want 1", got)
	}
	if got := col.Disseminations(); got != 1 {
		t.Fatalf("disseminations = %d, want 1", got)
	}
	dels := col.Deliveries(metrics.AllHops)
	if len(dels) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(dels))
	}
	if d := dels[0]; d.To != bob || d.Hops != 1 || d.Delay() != 5*time.Second {
		t.Fatalf("delivery = %+v (delay %v)", d, d.Delay())
	}
	if got := col.TrackedEvictions(); got != 1 {
		t.Fatalf("tracked evictions = %d, want 1", got)
	}

	// Retransmitted events (an exporter redialing after a write timeout
	// resends the identical frame) must not inflate any counter.
	agg.Record(Event{Type: EventDisseminated, Node: bob, At: at(5), Ref: ref, Kind: msg.KindPost, Hops: 1, Created: at(0)})
	agg.Record(Event{Type: EventEvicted, Node: carol, At: at(6), Ref: ref, Kind: msg.KindPost})
	if got := col.Disseminations(); got != 1 {
		t.Fatalf("retransmitted dissemination counted: %d", got)
	}
	if got := col.Evictions(); got != 1 {
		t.Fatalf("retransmitted eviction counted: %d", got)
	}
	if got := agg.Stats().Duplicates; got != 2 {
		t.Fatalf("duplicates = %d, want 2", got)
	}

	// A delivery reported again via a redundant path (fresh timestamp)
	// passes the retransmit filter but the collector still dedups the
	// (message, recipient) pair.
	agg.Record(Event{Type: EventDelivered, Node: bob, At: at(7), Ref: ref, Kind: msg.KindPost, Hops: 2, Created: at(0)})
	if n := len(col.Deliveries(metrics.AllHops)); n != 1 {
		t.Fatalf("redundant-path delivery counted: %d", n)
	}

	// A genuine re-receipt — the node evicted the message, its tombstone
	// was forgotten, and it fetched the message again — carries a fresh
	// clock reading and counts as a real dissemination.
	agg.Record(Event{Type: EventDisseminated, Node: carol, At: at(8), Ref: ref, Kind: msg.KindPost, Hops: 2, Created: at(0)})
	agg.Record(Event{Type: EventDisseminated, Node: carol, At: at(9), Ref: ref, Kind: msg.KindPost, Hops: 2, Created: at(0)})
	if got := col.Disseminations(); got != 3 {
		t.Fatalf("re-receipt disseminations = %d, want 3", got)
	}
}

// TestAggregatorIgnoresChatter: follow/unfollow receipts are not
// workload and must neither buffer nor pollute the collector.
func TestAggregatorIgnoresChatter(t *testing.T) {
	agg := NewAggregator()
	ref := msg.Ref{Author: alice, Seq: 2}
	agg.Record(Event{Type: EventDisseminated, Node: bob, At: at(1), Ref: ref, Kind: msg.KindFollow, Created: at(0)})
	agg.Record(Event{Type: EventDelivered, Node: bob, At: at(1), Ref: ref, Kind: msg.KindFollow, Created: at(0)})
	agg.Record(Event{Type: EventEvicted, Node: bob, At: at(2), Ref: ref, Kind: msg.KindFollow})
	col := agg.Collector()
	if col.CreatedCount() != 0 || len(col.Deliveries(metrics.AllHops)) != 0 {
		t.Fatalf("chatter reached the collector")
	}
	// The untracked eviction still counts toward the global total.
	if got := col.Evictions(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if got := col.TrackedEvictions(); got != 0 {
		t.Fatalf("tracked evictions = %d, want 0", got)
	}
}

// TestExporterServerEndToEnd ships events over a real TCP connection and
// checks nothing is lost or duplicated.
func TestExporterServerEndToEnd(t *testing.T) {
	agg := NewAggregator()
	srv, err := NewServer("127.0.0.1:0", agg, t.Logf)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close(time.Second)

	exp := NewExporter(srv.Addr(), ExporterOptions{Logf: t.Logf})
	const posts = 50
	for i := 1; i <= posts; i++ {
		exp.Record(Event{
			Type: EventCreated, Node: alice, At: at(i),
			Ref: msg.Ref{Author: alice, Seq: uint64(i)}, Kind: msg.KindPost, Created: at(i),
		})
		exp.Record(Event{
			Type: EventDelivered, Node: bob, At: at(i + 1),
			Ref: msg.Ref{Author: alice, Seq: uint64(i)}, Kind: msg.KindPost, Hops: 1, Created: at(i),
		})
	}
	if err := exp.Close(); err != nil {
		t.Fatalf("exporter Close: %v", err)
	}
	if err := srv.Close(5 * time.Second); err != nil {
		t.Fatalf("server Close: %v", err)
	}

	es := exp.Stats()
	if es.Recorded != 2*posts || es.Sent != 2*posts || es.Dropped != 0 {
		t.Fatalf("exporter stats = %+v", es)
	}
	as := agg.Stats()
	if as.Events != 2*posts {
		t.Fatalf("aggregator saw %d events, want %d", as.Events, 2*posts)
	}
	col := agg.Collector()
	if col.CreatedCount() != posts || len(col.Deliveries(metrics.AllHops)) != posts {
		t.Fatalf("collector: created=%d deliveries=%d, want %d each",
			col.CreatedCount(), len(col.Deliveries(metrics.AllHops)), posts)
	}
}

// TestExporterDropsWhenUnreachable: a dead collector must cost bounded
// memory and counted drops, never a blocked Record.
func TestExporterDropsWhenUnreachable(t *testing.T) {
	exp := NewExporter("127.0.0.1:1", ExporterOptions{
		Buffer:        4,
		RetryInterval: 10 * time.Millisecond,
		DialTimeout:   50 * time.Millisecond,
		FlushTimeout:  100 * time.Millisecond,
	})
	const n = 32
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			exp.Record(Event{Type: EventContactUp, Node: alice, At: at(i), Peer: bob})
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Record blocked on unreachable collector")
	}
	if err := exp.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := exp.Stats()
	if st.Sent != 0 {
		t.Fatalf("sent %d events to nothing", st.Sent)
	}
	if st.Dropped == 0 {
		t.Fatalf("no drops counted: %+v", st)
	}
	if st.Recorded+0 < st.Dropped {
		t.Fatalf("more drops than records: %+v", st)
	}
}
