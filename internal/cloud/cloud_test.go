package cloud

import (
	"crypto/rand"
	"errors"
	"testing"
	"time"

	"sos/internal/id"
	"sos/internal/pki"
)

func newService(t *testing.T) *Service {
	t.Helper()
	ca, err := pki.NewCA("AlleyOop Root CA")
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	return New(ca)
}

func TestSignUp(t *testing.T) {
	svc := newService(t)
	acct, err := svc.SignUp("alice")
	if err != nil {
		t.Fatalf("SignUp: %v", err)
	}
	if acct.User != id.NewUserID("alice") {
		t.Error("assigned identifier does not match handle derivation")
	}
	if _, err := svc.SignUp("alice"); !errors.Is(err, ErrHandleTaken) {
		t.Errorf("duplicate SignUp: err = %v, want ErrHandleTaken", err)
	}
	if _, err := svc.SignUp(""); err == nil {
		t.Error("empty handle accepted")
	}
}

func TestBootstrapFullFlow(t *testing.T) {
	svc := newService(t)
	creds, err := Bootstrap(svc, "alice", rand.Reader)
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	// The issued certificate must verify against the pinned root and name
	// the same user.
	v, err := pki.NewVerifier(creds.RootDER, nil)
	if err != nil {
		t.Fatalf("NewVerifier: %v", err)
	}
	uc, err := v.Verify(creds.Cert.DER)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if uc.User != creds.Ident.User {
		t.Errorf("certificate user = %v, want %v", uc.User, creds.Ident.User)
	}
	if !uc.Key.Equal(creds.Ident.Public()) {
		t.Error("certificate key does not match device identity key")
	}
}

// TestEnrollRejectsStolenIdentifier exercises the attack the paper calls
// out in §IV: a malicious device provides someone else's unique
// user-identifier during sign-up, and the cloud must refuse to have a
// certificate generated for it.
func TestEnrollRejectsStolenIdentifier(t *testing.T) {
	svc := newService(t)
	if _, err := svc.SignUp("alice"); err != nil {
		t.Fatalf("SignUp(alice): %v", err)
	}
	if _, err := svc.SignUp("mallory"); err != nil {
		t.Fatalf("SignUp(mallory): %v", err)
	}
	malloryKeys, err := id.NewIdentity(id.NewUserID("alice"), rand.Reader) // claims alice's ID
	if err != nil {
		t.Fatalf("NewIdentity: %v", err)
	}
	_, _, err = svc.Enroll("mallory", malloryKeys.User, malloryKeys.Public())
	if !errors.Is(err, ErrIdentifierMismatch) {
		t.Errorf("Enroll with stolen identifier: err = %v, want ErrIdentifierMismatch", err)
	}
}

func TestEnrollUnknownAccount(t *testing.T) {
	svc := newService(t)
	ident, err := id.NewIdentity(id.NewUserID("ghost"), rand.Reader)
	if err != nil {
		t.Fatalf("NewIdentity: %v", err)
	}
	if _, _, err := svc.Enroll("ghost", ident.User, ident.Public()); !errors.Is(err, ErrNoAccount) {
		t.Errorf("Enroll unknown account: err = %v, want ErrNoAccount", err)
	}
}

func TestOfflineFailsEveryRPC(t *testing.T) {
	svc := newService(t)
	creds, err := Bootstrap(svc, "alice", rand.Reader)
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	svc.SetReachable(false)

	if _, err := svc.SignUp("bob"); !errors.Is(err, ErrOffline) {
		t.Errorf("SignUp offline: err = %v, want ErrOffline", err)
	}
	if _, _, err := svc.Enroll("alice", creds.Ident.User, creds.Ident.Public()); !errors.Is(err, ErrOffline) {
		t.Errorf("Enroll offline: err = %v, want ErrOffline", err)
	}
	if _, err := svc.SyncCRL(); !errors.Is(err, ErrOffline) {
		t.Errorf("SyncCRL offline: err = %v, want ErrOffline", err)
	}
	if err := svc.RevokeUser(creds.Ident.User); !errors.Is(err, ErrOffline) {
		t.Errorf("RevokeUser offline: err = %v, want ErrOffline", err)
	}
	if err := svc.SyncActions(creds.Ident.User, [][]byte{{1}}); !errors.Is(err, ErrOffline) {
		t.Errorf("SyncActions offline: err = %v, want ErrOffline", err)
	}

	svc.SetReachable(true)
	if _, err := svc.SignUp("bob"); err != nil {
		t.Errorf("SignUp after recovery: %v", err)
	}
}

func TestRevokeAndCRLSync(t *testing.T) {
	svc := newService(t)
	creds, err := Bootstrap(svc, "alice", rand.Reader)
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if err := svc.RevokeUser(creds.Ident.User); err != nil {
		t.Fatalf("RevokeUser: %v", err)
	}
	crl, err := svc.SyncCRL()
	if err != nil {
		t.Fatalf("SyncCRL: %v", err)
	}
	if _, ok := crl[creds.Cert.Serial]; !ok {
		t.Error("revoked serial missing from synced CRL")
	}

	v, err := pki.NewVerifier(creds.RootDER, nil)
	if err != nil {
		t.Fatalf("NewVerifier: %v", err)
	}
	v.UpdateCRL(crl)
	if _, err := v.Verify(creds.Cert.DER); !errors.Is(err, pki.ErrRevoked) {
		t.Errorf("Verify revoked cert after CRL sync: err = %v, want ErrRevoked", err)
	}
}

func TestRevokeUnknownUser(t *testing.T) {
	svc := newService(t)
	if err := svc.RevokeUser(id.NewUserID("nobody")); !errors.Is(err, ErrNoAccount) {
		t.Errorf("RevokeUser unknown: err = %v, want ErrNoAccount", err)
	}
}

func TestRenew(t *testing.T) {
	svc := newService(t)
	creds, err := Bootstrap(svc, "alice", rand.Reader)
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	renewed, err := svc.Renew("alice", creds.Ident.User, creds.Ident.Public())
	if err != nil {
		t.Fatalf("Renew: %v", err)
	}
	if renewed.Serial == creds.Cert.Serial {
		t.Error("renewed certificate reused the old serial")
	}
}

func TestActionSyncRoundTrip(t *testing.T) {
	svc := newService(t)
	user := id.NewUserID("alice")
	give := [][]byte{[]byte("post-1"), []byte("follow-bob")}
	if err := svc.SyncActions(user, give); err != nil {
		t.Fatalf("SyncActions: %v", err)
	}
	got, err := svc.SyncedActions(user)
	if err != nil {
		t.Fatalf("SyncedActions: %v", err)
	}
	if len(got) != len(give) {
		t.Fatalf("synced %d actions, want %d", len(got), len(give))
	}
	// Mutating returned data must not affect the cloud's copy.
	got[0][0] = 'X'
	again, err := svc.SyncedActions(user)
	if err != nil {
		t.Fatalf("SyncedActions: %v", err)
	}
	if string(again[0]) != "post-1" {
		t.Error("cloud state mutated through returned slice")
	}
}

func TestLookup(t *testing.T) {
	svc := newService(t)
	acct, err := svc.SignUp("alice")
	if err != nil {
		t.Fatalf("SignUp: %v", err)
	}
	got, ok := svc.Lookup(acct.User)
	if !ok || got.Handle != "alice" {
		t.Errorf("Lookup = %+v, %v; want alice account", got, ok)
	}
	if _, ok := svc.Lookup(id.NewUserID("nobody")); ok {
		t.Error("Lookup of unknown user succeeded")
	}
}

func TestWithClock(t *testing.T) {
	ca, err := pki.NewCA("root")
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	fixed := time.Date(2017, 4, 6, 12, 0, 0, 0, time.UTC)
	svc := New(ca, WithClock(func() time.Time { return fixed }))
	acct, err := svc.SignUp("alice")
	if err != nil {
		t.Fatalf("SignUp: %v", err)
	}
	if !acct.CreatedAt.Equal(fixed) {
		t.Errorf("CreatedAt = %v, want %v", acct.CreatedAt, fixed)
	}
}
