package cloud

import (
	"crypto/x509"
	"encoding/json"
	"encoding/pem"
	"fmt"
	"os"
	"time"

	"sos/internal/id"
	"sos/internal/pki"
)

// credFile is the on-disk JSON form of Credentials. The private key is
// PEM-encoded SEC 1 DER; certificates are PEM-encoded X.509 DER. A
// credentials file is what a daemon like sosd loads instead of talking to
// the cloud: pre-provisioning it is the "one-time infrastructure
// requirement" done ahead of deployment.
type credFile struct {
	Handle  string `json:"handle"`
	User    string `json:"user"`
	KeyPEM  string `json:"key_pem"`
	CertPEM string `json:"cert_pem"`
	RootPEM string `json:"root_pem"`
}

// Marshal serializes the credentials for storage. The result contains
// the identity's private key: treat it like one.
func (c *Credentials) Marshal() ([]byte, error) {
	if c.Ident == nil || c.Cert == nil {
		return nil, fmt.Errorf("cloud: credentials missing identity or certificate")
	}
	keyDER, err := x509.MarshalECPrivateKey(c.Ident.Key)
	if err != nil {
		return nil, fmt.Errorf("cloud: marshaling identity key: %w", err)
	}
	f := credFile{
		Handle:  c.Handle,
		User:    c.Ident.User.String(),
		KeyPEM:  string(pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER})),
		CertPEM: string(pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: c.Cert.DER})),
		RootPEM: string(pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: c.RootDER})),
	}
	return json.MarshalIndent(f, "", "  ")
}

// UnmarshalCredentials parses credentials produced by Marshal, verifying
// that the certificate chains to the bundled root and binds the stored
// key and user identifier.
func UnmarshalCredentials(data []byte) (*Credentials, error) {
	var f credFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("cloud: parsing credentials file: %w", err)
	}
	user, err := id.ParseUserID(f.User)
	if err != nil {
		return nil, fmt.Errorf("cloud: credentials user id: %w", err)
	}
	keyDER, err := pemBytes(f.KeyPEM, "EC PRIVATE KEY")
	if err != nil {
		return nil, err
	}
	key, err := x509.ParseECPrivateKey(keyDER)
	if err != nil {
		return nil, fmt.Errorf("cloud: parsing identity key: %w", err)
	}
	certDER, err := pemBytes(f.CertPEM, "CERTIFICATE")
	if err != nil {
		return nil, err
	}
	rootDER, err := pemBytes(f.RootPEM, "CERTIFICATE")
	if err != nil {
		return nil, err
	}
	verifier, err := pki.NewVerifier(rootDER, time.Now)
	if err != nil {
		return nil, fmt.Errorf("cloud: credentials root: %w", err)
	}
	cert, err := verifier.VerifyFor(certDER, user)
	if err != nil {
		return nil, fmt.Errorf("cloud: credentials certificate: %w", err)
	}
	if !key.PublicKey.Equal(cert.Key) {
		return nil, fmt.Errorf("cloud: credentials key does not match the certified key")
	}
	return &Credentials{
		Handle:  f.Handle,
		Ident:   &id.Identity{User: user, Key: key},
		Cert:    cert,
		RootDER: rootDER,
	}, nil
}

// SaveCredentials writes the credentials to path with owner-only
// permissions (the file holds a private key).
func SaveCredentials(c *Credentials, path string) error {
	data, err := c.Marshal()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o600); err != nil {
		return fmt.Errorf("cloud: writing credentials: %w", err)
	}
	return nil
}

// LoadCredentials reads credentials written by SaveCredentials.
func LoadCredentials(path string) (*Credentials, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cloud: reading credentials: %w", err)
	}
	return UnmarshalCredentials(data)
}

// pemBytes decodes one PEM block of the expected type.
func pemBytes(s, wantType string) ([]byte, error) {
	block, _ := pem.Decode([]byte(s))
	if block == nil || block.Type != wantType {
		return nil, fmt.Errorf("cloud: credentials file lacks a %s PEM block", wantType)
	}
	return block.Bytes, nil
}
