package cloud

import (
	"path/filepath"
	"strings"
	"testing"

	"sos/internal/id"
	"sos/internal/pki"
)

func TestCredentialsRoundTrip(t *testing.T) {
	ca, err := pki.NewCA("Test Root")
	if err != nil {
		t.Fatal(err)
	}
	svc := New(ca)
	creds, err := Bootstrap(svc, "alice", nil)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "alice.creds")
	if err := SaveCredentials(creds, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCredentials(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Handle != "alice" {
		t.Fatalf("handle = %q, want alice", got.Handle)
	}
	if got.Ident.User != creds.Ident.User {
		t.Fatalf("user = %s, want %s", got.Ident.User, creds.Ident.User)
	}
	if !got.Ident.Key.PublicKey.Equal(creds.Ident.Public()) {
		t.Fatal("reloaded key does not match")
	}
	if got.Cert.Serial != creds.Cert.Serial {
		t.Fatalf("certificate serial changed across reload")
	}

	// The reloaded identity must still sign verifiably under the
	// certified key.
	sig, err := got.Ident.Sign([]byte("probe"))
	if err != nil {
		t.Fatal(err)
	}
	if !id.Verify(creds.Cert.Key, []byte("probe"), sig) {
		t.Fatal("reloaded identity's signature does not verify under the original certificate")
	}
}

func TestCredentialsRejectsTampering(t *testing.T) {
	ca, err := pki.NewCA("Test Root")
	if err != nil {
		t.Fatal(err)
	}
	svc := New(ca)
	creds, err := Bootstrap(svc, "alice", nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := creds.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	// A certificate from a different root must be rejected at load time.
	otherCA, err := pki.NewCA("Evil Root")
	if err != nil {
		t.Fatal(err)
	}
	otherSvc := New(otherCA)
	otherCreds, err := Bootstrap(otherSvc, "alice2", nil)
	if err != nil {
		t.Fatal(err)
	}
	otherData, err := otherCreds.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var mixed string = string(data)
	// Swap in the other file's certificate block wholesale via JSON
	// surgery: replace the cert_pem value.
	mixed = strings.Replace(mixed, extractField(t, string(data), "cert_pem"), extractField(t, string(otherData), "cert_pem"), 1)
	if _, err := UnmarshalCredentials([]byte(mixed)); err == nil {
		t.Fatal("credentials with a foreign certificate accepted")
	}

	if _, err := UnmarshalCredentials([]byte("{")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

// extractField pulls the raw JSON string value of one field.
func extractField(t *testing.T, doc, field string) string {
	t.Helper()
	idx := strings.Index(doc, `"`+field+`": "`)
	if idx < 0 {
		t.Fatalf("field %s not found", field)
	}
	start := idx + len(field) + 5
	end := strings.Index(doc[start:], `",`)
	if end < 0 {
		end = strings.Index(doc[start:], `"`)
	}
	return doc[start : start+end]
}
