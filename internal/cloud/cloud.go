// Package cloud simulates the online backend AlleyOop Social uses for its
// one-time infrastructure requirement (paper §IV, Fig. 2a): account
// creation, certificate enrollment brokered to the CA, revocation-list
// distribution, and message synchronization when the Internet happens to
// be reachable. After a device completes Bootstrap it never needs the
// cloud again for privacy, security, or dissemination — only for the
// maintenance operations the paper lists as online-only (revoke, renew,
// CRL updates).
package cloud

import (
	"crypto/ecdsa"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"sos/internal/id"
	"sos/internal/pki"
)

// Errors reported by the cloud service.
var (
	ErrHandleTaken        = errors.New("cloud: handle already registered")
	ErrNoAccount          = errors.New("cloud: no such account")
	ErrIdentifierMismatch = errors.New("cloud: claimed user identifier does not match the logged-in account")
	ErrOffline            = errors.New("cloud: service unreachable")
)

// Account is a registered AlleyOop Social account.
type Account struct {
	Handle    string
	User      id.UserID
	CreatedAt time.Time
}

// Service is the simulated cloud. It owns the CA and the account registry.
// Reachability can be toggled to model infrastructure outages: every RPC
// fails with ErrOffline while unreachable.
type Service struct {
	mu        sync.Mutex
	ca        *pki.CA
	now       func() time.Time
	reachable bool
	accounts  map[string]Account
	byUser    map[id.UserID]string
	synced    map[id.UserID][][]byte
}

// Option configures the Service.
type Option func(*Service)

// WithClock injects a virtual time source.
func WithClock(now func() time.Time) Option {
	return func(s *Service) { s.now = now }
}

// New creates a cloud service fronting the given CA.
func New(ca *pki.CA, opts ...Option) *Service {
	s := &Service{
		ca:        ca,
		now:       time.Now,
		reachable: true,
		accounts:  make(map[string]Account),
		byUser:    make(map[id.UserID]string),
		synced:    make(map[id.UserID][][]byte),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// SetReachable toggles simulated Internet availability.
func (s *Service) SetReachable(up bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reachable = up
}

// Reachable reports whether the cloud is currently reachable.
func (s *Service) Reachable() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reachable
}

// checkOnline returns ErrOffline when the service is unreachable.
// Callers must hold s.mu.
func (s *Service) checkOnline() error {
	if !s.reachable {
		return ErrOffline
	}
	return nil
}

// SignUp registers a handle and assigns its unique 10-byte user
// identifier. This models the in-app account-creation step that happens
// while the device still has Internet connectivity.
func (s *Service) SignUp(handle string) (Account, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkOnline(); err != nil {
		return Account{}, err
	}
	if handle == "" {
		return Account{}, errors.New("cloud: empty handle")
	}
	if _, taken := s.accounts[handle]; taken {
		return Account{}, fmt.Errorf("%w: %q", ErrHandleTaken, handle)
	}
	acct := Account{Handle: handle, User: id.NewUserID(handle), CreatedAt: s.now()}
	s.accounts[handle] = acct
	s.byUser[acct.User] = handle
	return acct, nil
}

// Enroll asks the CA to issue a certificate binding claimed to pub, on
// behalf of the logged-in account named by handle. Per the paper's §IV
// mitigation, the cloud first compares the claimed unique user-identifier
// with the identifier affiliated with the logged-in user; a malicious
// device presenting someone else's identifier is refused.
func (s *Service) Enroll(handle string, claimed id.UserID, pub *ecdsa.PublicKey) (*pki.UserCert, []byte, error) {
	s.mu.Lock()
	if err := s.checkOnline(); err != nil {
		s.mu.Unlock()
		return nil, nil, err
	}
	acct, ok := s.accounts[handle]
	s.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrNoAccount, handle)
	}
	if acct.User != claimed {
		return nil, nil, fmt.Errorf("%w: claimed %s, account holds %s", ErrIdentifierMismatch, claimed, acct.User)
	}
	cert, err := s.ca.Issue(claimed, pub)
	if err != nil {
		return nil, nil, fmt.Errorf("cloud: CA issuance: %w", err)
	}
	return cert, s.ca.RootDER(), nil
}

// Renew re-issues a certificate for an enrolled user; the paper notes this
// replenishment path requires connectivity.
func (s *Service) Renew(handle string, claimed id.UserID, pub *ecdsa.PublicKey) (*pki.UserCert, error) {
	cert, _, err := s.Enroll(handle, claimed, pub)
	return cert, err
}

// RevokeUser revokes the latest certificate of the given user, e.g. after
// a compromised-device report.
func (s *Service) RevokeUser(user id.UserID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkOnline(); err != nil {
		return err
	}
	if !s.ca.RevokeUser(user) {
		return fmt.Errorf("%w: user %s has no issued certificate", ErrNoAccount, user)
	}
	return nil
}

// SyncCRL returns the CA's current revocation list for a device to pin.
func (s *Service) SyncCRL() (map[string]time.Time, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkOnline(); err != nil {
		return nil, err
	}
	return s.ca.CRL(), nil
}

// Lookup resolves a user identifier back to its account, if any.
func (s *Service) Lookup(user id.UserID) (Account, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	handle, ok := s.byUser[user]
	if !ok {
		return Account{}, false
	}
	return s.accounts[handle], true
}

// SyncActions uploads locally-stored actions (opaque encoded records) for
// the user; AlleyOop Social calls this whenever the Internet becomes
// available (paper §V operation 2).
func (s *Service) SyncActions(user id.UserID, actions [][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkOnline(); err != nil {
		return err
	}
	for _, a := range actions {
		cp := make([]byte, len(a))
		copy(cp, a)
		s.synced[user] = append(s.synced[user], cp)
	}
	return nil
}

// SyncedActions returns the actions the cloud has recorded for user.
func (s *Service) SyncedActions(user id.UserID) ([][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkOnline(); err != nil {
		return nil, err
	}
	src := s.synced[user]
	out := make([][]byte, len(src))
	for i, a := range src {
		cp := make([]byte, len(a))
		copy(cp, a)
		out[i] = cp
	}
	return out, nil
}

// Credentials is everything a device holds after completing the one-time
// infrastructure requirement: its identity key pair, its CA-issued
// certificate, and the pinned CA root.
type Credentials struct {
	Handle  string
	Ident   *id.Identity
	Cert    *pki.UserCert
	RootDER []byte
}

// Bootstrap performs the complete Fig. 2a flow for a new user: sign up,
// generate an identity key pair on-device, enroll the public key with the
// cloud/CA, and pin the root certificate. rng may be nil for crypto/rand.
func Bootstrap(svc *Service, handle string, rng io.Reader) (*Credentials, error) {
	acct, err := svc.SignUp(handle)
	if err != nil {
		return nil, fmt.Errorf("cloud: signup: %w", err)
	}
	ident, err := id.NewIdentity(acct.User, rng)
	if err != nil {
		return nil, fmt.Errorf("cloud: generating identity: %w", err)
	}
	cert, rootDER, err := svc.Enroll(handle, ident.User, ident.Public())
	if err != nil {
		return nil, fmt.Errorf("cloud: enrollment: %w", err)
	}
	return &Credentials{Handle: handle, Ident: ident, Cert: cert, RootDER: rootDER}, nil
}
