package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sos/internal/id"
	"sos/internal/msg"
)

func openDisk(t *testing.T, dir string, opts Options) *Disk {
	t.Helper()
	d, err := OpenDisk(dir, alice, opts)
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	return d
}

func TestDiskTornTail(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir, Options{})
	if _, err := d.Put(post(bob, 1, "whole")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := d.Put(post(bob, 2, "also whole")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Simulate a crash mid-append: chop the last record in half.
	path := filepath.Join(dir, logFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o600); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	re := openDisk(t, dir, Options{})
	defer re.Close()
	if !re.Has(msg.Ref{Author: bob, Seq: 1}) {
		t.Error("intact record lost")
	}
	if re.Has(msg.Ref{Author: bob, Seq: 2}) {
		t.Error("torn record replayed")
	}
	// The torn tail must be gone from disk, and appends must continue.
	if _, err := re.Put(post(bob, 3, "after recovery")); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
	if err := re.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	again := openDisk(t, dir, Options{})
	defer again.Close()
	if !again.Has(msg.Ref{Author: bob, Seq: 3}) || again.Has(msg.Ref{Author: bob, Seq: 2}) {
		t.Error("post-recovery append not replayed cleanly")
	}
}

func TestDiskFlippedBitDropsTail(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir, Options{})
	if _, err := d.Put(post(bob, 1, "good")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := d.Put(post(bob, 2, "to be corrupted")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	path := filepath.Join(dir, logFile)
	raw, _ := os.ReadFile(path)
	raw[len(raw)-10] ^= 0x40 // flip one bit inside the second record
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	re := openDisk(t, dir, Options{})
	defer re.Close()
	if !re.Has(msg.Ref{Author: bob, Seq: 1}) {
		t.Error("record before the corruption lost")
	}
	if re.Has(msg.Ref{Author: bob, Seq: 2}) {
		t.Error("CRC-failing record replayed")
	}
}

func TestDiskCompaction(t *testing.T) {
	dir := t.TempDir()
	// A tiny threshold forces a compaction within a few puts.
	d := openDisk(t, dir, Options{CompactBytes: 512, NoSync: true})
	for seq := uint64(1); seq <= 8; seq++ {
		if _, err := d.Put(post(bob, seq, "fill the log until it compacts")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	d.Subscribe(carol)
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	if _, err := os.Stat(filepath.Join(dir, snapshotFile)); err != nil {
		t.Fatalf("compaction never produced a snapshot: %v", err)
	}
	if st, err := os.Stat(filepath.Join(dir, logFile)); err != nil || st.Size() >= 512 {
		t.Errorf("log not reset by compaction: size=%v err=%v", st, err)
	}

	re := openDisk(t, dir, Options{})
	defer re.Close()
	if re.Len() != 8 || !re.IsSubscribed(carol) {
		t.Errorf("state after compaction: len=%d subscribed=%v, want 8/true",
			re.Len(), re.IsSubscribed(carol))
	}
	if got := refsOf(re.All()); len(got) != 8 {
		t.Errorf("All = %v", got)
	}
}

func TestDiskReloadEquivalence(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir, Options{})
	for seq := uint64(1); seq <= 5; seq++ {
		if _, err := d.Put(post(bob, seq*3, "sparse")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	d.Subscribe(bob)
	want := struct {
		refs    []msg.Ref
		summary map[id.UserID]uint64
		missing []uint64
	}{refsOf(d.All()), d.Summary(), d.Missing(bob, 15)}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re := openDisk(t, dir, Options{})
	defer re.Close()
	if !reflect.DeepEqual(refsOf(re.All()), want.refs) {
		t.Error("messages differ after reload")
	}
	if !reflect.DeepEqual(re.Summary(), want.summary) {
		t.Error("summary differs after reload")
	}
	if !reflect.DeepEqual(re.Missing(bob, 15), want.missing) {
		t.Error("missing set differs after reload")
	}
}

// --- snapshot corruption paths ---

// snapshotBytes builds a valid snapshot for surgery.
func snapshotBytes(t *testing.T) []byte {
	t.Helper()
	s := New(alice)
	mustPut(t, s, post(bob, 1, "body-one"))
	mustPut(t, s, post(bob, 2, "body-two"))
	s.Subscribe(bob)
	s.Subscribe(carol)
	var buf bytes.Buffer
	if err := writeSnapshot(&buf, s.snapshot()); err != nil {
		t.Fatalf("writeSnapshot: %v", err)
	}
	return buf.Bytes()
}

func TestSnapshotCorruption(t *testing.T) {
	valid := snapshotBytes(t)
	tests := []struct {
		name string
		give func() []byte
	}{
		{name: "empty", give: func() []byte { return nil }},
		{name: "bad magic", give: func() []byte {
			b := append([]byte(nil), valid...)
			b[0] ^= 0xff
			return b
		}},
		{name: "truncated message body", give: func() []byte {
			// Cut inside the first encoded message.
			return valid[:len(snapshotMagic)+1+2+10]
		}},
		{name: "oversized length prefix", give: func() []byte {
			b := append([]byte(nil), valid[:len(snapshotMagic)+1]...)
			b = binary.AppendUvarint(b, maxEncodedMessage+1)
			return b
		}},
		{name: "partial subscription list", give: func() []byte {
			// Claim two subscriptions but include only half of one id.
			b := append([]byte(nil), valid...)
			return b[:len(b)-24]
		}},
		{name: "truncated count", give: func() []byte {
			return append(append([]byte(nil), snapshotMagic...), 0x80)
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := New(alice)
			if err := readSnapshot(bytes.NewReader(tt.give()), s); err == nil {
				t.Error("readSnapshot accepted a corrupt stream")
			}
		})
	}
}

// FuzzWALRecord fuzzes the disk engine's record codec: arbitrary bytes
// must never panic, and every record the reader accepts must re-encode to
// a frame the reader accepts again (decode/encode/decode agreement).
func FuzzWALRecord(f *testing.F) {
	// Seed with a few valid frames.
	mk := func(typ byte, body []byte) []byte {
		rec := append([]byte{typ}, binary.AppendUvarint(nil, uint64(len(body)))...)
		rec = append(rec, body...)
		return binary.BigEndian.AppendUint32(rec, crc32.ChecksumIEEE(rec))
	}
	user := id.NewUserID("fuzz")
	f.Add(mk(recSub, user[:]))
	f.Add(mk(recEvict, binary.AppendUvarint(append([]byte(nil), user[:]...), 7)))
	f.Add(mk(recPut, []byte{1, 2, 3}))
	f.Add([]byte{recPut, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		typ, body, n, err := readRecord(br)
		if err != nil {
			return
		}
		if n > int64(len(data)) {
			t.Fatalf("readRecord consumed %d of %d bytes", n, len(data))
		}
		// Round trip: re-frame and decode again.
		again := mk(typ, body)
		typ2, body2, _, err := readRecord(bufio.NewReader(bytes.NewReader(again)))
		if err != nil {
			t.Fatalf("re-encoded record rejected: %v", err)
		}
		if typ2 != typ || !bytes.Equal(body2, body) {
			t.Fatalf("round trip mismatch: %d/%x vs %d/%x", typ, body, typ2, body2)
		}
	})
}
