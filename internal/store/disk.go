// The disk-backed storage engine: the paper's "local database on the
// mobile device" made durable. State lives in two files under one
// directory — a snapshot (compacted base image) and an append-only record
// log (everything since the snapshot). Every mutation appends one
// CRC-framed record; on open the engine loads the snapshot, replays the
// log, and truncates any torn tail left by a crash, so a daemon killed
// mid-write resumes with every acknowledged message intact. When the log
// outgrows its threshold the engine compacts: it writes a fresh snapshot
// to a temp file, fsyncs, atomically renames it over the old one, and
// resets the log.

package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"sos/internal/id"
	"sos/internal/msg"
	"sos/internal/obs/span"
)

// On-disk layout.
const (
	snapshotFile = "store.snap"
	logFile      = "store.log"

	defaultCompactBytes = 1 << 20
)

// Record types in the append log.
const (
	recPut   byte = 1 // body: encoded message
	recSub   byte = 2 // body: 10-byte user id
	recUnsub byte = 3 // body: 10-byte user id
	recEvict byte = 4 // body: 10-byte author + uvarint seq
)

// ErrClosed is returned by writes to a closed disk engine.
var ErrClosed = errors.New("store: disk engine closed")

// Disk is the durable storage engine. It embeds the in-memory Store as
// its index — every read goes straight to memory — and shadows each
// mutation with an append-log record.
type Disk struct {
	*Store
	dir          string
	noSync       bool
	compactBytes int64
	tracer       *span.Tracer
	track        uint64

	logMu    sync.Mutex
	log      *os.File
	logBytes int64
	closed   bool
	// appendErr latches the first failed append. Subscribe, Unsubscribe,
	// and eviction hooks cannot return errors, so a failure to make one
	// of their records durable is held here and surfaced by the next Put
	// and by Close — the engine refuses to pretend it is still durable.
	appendErr error
}

var _ Engine = (*Disk)(nil)

// OpenDisk opens (or creates) the durable store in dir for owner,
// replaying any existing snapshot and log. Quota enforcement starts only
// after replay, so restart never re-litigates historical evictions; if
// the configured quota is tighter than the restored state, the overflow
// is evicted (and logged) immediately.
func OpenDisk(dir string, owner id.UserID, opts Options) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	maxMessages, maxBytes := opts.MaxMessages, opts.MaxBytes
	userHook := opts.OnEvict
	opts.MaxMessages, opts.MaxBytes = 0, 0
	opts.OnEvict = nil
	mem := NewMemory(owner, opts)

	d := &Disk{
		Store:        mem,
		dir:          dir,
		noSync:       opts.NoSync,
		compactBytes: opts.CompactBytes,
		tracer:       opts.Tracer,
	}
	if d.compactBytes <= 0 {
		d.compactBytes = defaultCompactBytes
	}
	if d.tracer != nil {
		d.track = d.tracer.Track("store")
	}

	if err := d.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := d.replayLog(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, logFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return nil, fmt.Errorf("store: opening log: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: stating log: %w", err)
	}
	d.log = f
	d.logBytes = st.Size()

	// From here on, evictions must reach the log before anything else
	// observes them.
	mem.OnEvict(d.logEviction)
	if userHook != nil {
		mem.OnEvict(userHook)
	}
	for _, ev := range mem.setQuota(maxMessages, maxBytes) {
		d.logEviction(ev)
		if userHook != nil {
			userHook(ev)
		}
	}
	return d, nil
}

// Dir returns the engine's storage directory.
func (d *Disk) Dir() string { return d.dir }

// Put inserts a message and makes it durable; see Engine.Put. Quota
// evictions triggered by the insert are logged (via the eviction hook)
// before the insert's own record.
func (d *Disk) Put(m *msg.Message) (bool, error) {
	added, err := d.Store.Put(m)
	if err != nil || !added {
		return added, err
	}
	// If the insert itself was immediately evicted by quota, its eviction
	// record is already in the log ahead of us; replay tombstones the ref
	// first and rejects this put record as a duplicate, which reproduces
	// the in-memory outcome exactly.
	buf, err := m.Encode()
	if err != nil {
		return true, fmt.Errorf("store: encoding %s for log: %w", m.Ref(), err)
	}
	if err := d.append(recPut, buf); err != nil {
		return true, err
	}
	return true, nil
}

// Subscribe records interest durably.
func (d *Disk) Subscribe(user id.UserID) {
	d.Store.Subscribe(user)
	_ = d.append(recSub, user[:])
}

// Unsubscribe removes interest durably.
func (d *Disk) Unsubscribe(user id.UserID) {
	d.Store.Unsubscribe(user)
	_ = d.append(recUnsub, user[:])
}

// Close flushes and closes the log; reads stay valid, writes fail. Any
// earlier silent durability failure (a Subscribe or eviction record that
// could not be appended) is reported here.
func (d *Disk) Close() error {
	d.logMu.Lock()
	defer d.logMu.Unlock()
	if d.closed {
		return d.appendErr
	}
	d.closed = true
	if err := d.log.Sync(); err != nil {
		d.log.Close()
		return fmt.Errorf("store: syncing log: %w", err)
	}
	if err := d.log.Close(); err != nil {
		return err
	}
	return d.appendErr
}

// logEviction is the hook that shadows in-memory drops in the log.
func (d *Disk) logEviction(ev Eviction) {
	body := make([]byte, 0, len(ev.Ref.Author)+binary.MaxVarintLen64)
	body = append(body, ev.Ref.Author[:]...)
	body = binary.AppendUvarint(body, ev.Ref.Seq)
	_ = d.append(recEvict, body)
}

// append frames one record (type, uvarint length, body, CRC-32), writes
// it, optionally fsyncs, and compacts when the log outgrows its
// threshold.
func (d *Disk) append(typ byte, body []byte) error {
	rec := make([]byte, 0, 1+binary.MaxVarintLen64+len(body)+4)
	rec = append(rec, typ)
	rec = binary.AppendUvarint(rec, uint64(len(body)))
	rec = append(rec, body...)
	rec = binary.BigEndian.AppendUint32(rec, crc32.ChecksumIEEE(rec))

	d.logMu.Lock()
	defer d.logMu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if d.appendErr != nil {
		return d.appendErr
	}
	if _, err := d.log.Write(rec); err != nil {
		return d.latchLocked(fmt.Errorf("store: appending log record: %w", err))
	}
	if !d.noSync {
		if err := d.log.Sync(); err != nil {
			return d.latchLocked(fmt.Errorf("store: syncing log: %w", err))
		}
	}
	d.logBytes += int64(len(rec))
	if d.logBytes >= d.compactBytes {
		return d.latchLocked(d.compactLocked())
	}
	return nil
}

// latchLocked records the first durability failure (caller holds logMu).
func (d *Disk) latchLocked(err error) error {
	if err != nil && d.appendErr == nil {
		d.appendErr = err
	}
	return err
}

// compactLocked folds the log into a fresh snapshot: write to a temp
// file, fsync, rename over the old snapshot, truncate the log. A crash
// at any point leaves either the old snapshot + full log or the new
// snapshot + (possibly stale but idempotent) log records.
func (d *Disk) compactLocked() error {
	sp := d.tracer.Start(d.track, "store.compact")
	sp.Attr("logBytes", uint64(d.logBytes))
	defer sp.End()
	snap := d.Store.snapshot()
	sp.Attr("msgs", uint64(len(snap.msgs)))
	tmp := filepath.Join(d.dir, snapshotFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o600)
	if err != nil {
		return fmt.Errorf("store: creating snapshot: %w", err)
	}
	if err := writeSnapshot(f, snap); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, snapshotFile)); err != nil {
		return fmt.Errorf("store: installing snapshot: %w", err)
	}
	if err := d.log.Truncate(0); err != nil {
		return fmt.Errorf("store: truncating log: %w", err)
	}
	if _, err := d.log.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: rewinding log: %w", err)
	}
	d.logBytes = 0
	return nil
}

// loadSnapshot restores the compacted base image, if one exists.
func (d *Disk) loadSnapshot() error {
	f, err := os.Open(filepath.Join(d.dir, snapshotFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: opening snapshot: %w", err)
	}
	defer f.Close()
	if err := readSnapshot(f, d.Store); err != nil {
		return err
	}
	return nil
}

// replayLog applies every intact record and truncates the file after the
// last one, discarding any torn tail from a crash mid-append.
func (d *Disk) replayLog() error {
	path := filepath.Join(d.dir, logFile)
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: opening log: %w", err)
	}
	br := bufio.NewReader(f)
	var good int64
	for {
		typ, body, n, err := readRecord(br)
		if err != nil {
			break // torn tail or EOF: keep what replayed
		}
		if err := d.applyRecord(typ, body); err != nil {
			break // corrupt body: treat like a torn tail
		}
		good += n
	}
	f.Close()
	if err := os.Truncate(path, good); err != nil {
		return fmt.Errorf("store: truncating torn log tail: %w", err)
	}
	return nil
}

// applyRecord replays one record into the in-memory index.
func (d *Disk) applyRecord(typ byte, body []byte) error {
	switch typ {
	case recPut:
		m, err := msg.Decode(body)
		if err != nil {
			return err
		}
		_, err = d.Store.Put(m)
		return err
	case recSub, recUnsub:
		var u id.UserID
		if len(body) != len(u) {
			return fmt.Errorf("%w: subscription record length %d", ErrCorrupt, len(body))
		}
		copy(u[:], body)
		if typ == recSub {
			d.Store.Subscribe(u)
		} else {
			d.Store.Unsubscribe(u)
		}
		return nil
	case recEvict:
		var author id.UserID
		if len(body) < len(author)+1 {
			return fmt.Errorf("%w: eviction record length %d", ErrCorrupt, len(body))
		}
		copy(author[:], body)
		seq, n := binary.Uvarint(body[len(author):])
		if n <= 0 || len(author)+n != len(body) {
			return fmt.Errorf("%w: eviction record seq", ErrCorrupt)
		}
		d.Store.applyEvict(msg.Ref{Author: author, Seq: seq})
		return nil
	default:
		return fmt.Errorf("%w: unknown record type %d", ErrCorrupt, typ)
	}
}

// readRecord decodes one framed record, returning its type, body, and
// total encoded size. Any truncation, oversized length, or checksum
// mismatch is an error.
func readRecord(br *bufio.Reader) (byte, []byte, int64, error) {
	typ, err := br.ReadByte()
	if err != nil {
		return 0, nil, 0, err
	}
	hdr := []byte{typ}
	size, err := binary.ReadUvarint(&captureReader{br: br, into: &hdr})
	if err != nil {
		return 0, nil, 0, fmt.Errorf("%w: record length: %v", ErrCorrupt, err)
	}
	if size > maxEncodedMessage {
		return 0, nil, 0, fmt.Errorf("%w: record length %d", ErrCorrupt, size)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(br, body); err != nil {
		return 0, nil, 0, fmt.Errorf("%w: record body: %v", ErrCorrupt, err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(br, sum[:]); err != nil {
		return 0, nil, 0, fmt.Errorf("%w: record checksum: %v", ErrCorrupt, err)
	}
	crc := crc32.ChecksumIEEE(append(hdr, body...))
	if crc != binary.BigEndian.Uint32(sum[:]) {
		return 0, nil, 0, fmt.Errorf("%w: record checksum mismatch", ErrCorrupt)
	}
	total := int64(len(hdr)) + int64(len(body)) + 4
	return typ, body, total, nil
}

// captureReader is an io.ByteReader that remembers every byte it hands
// out, so binary.ReadUvarint can decode the length while the CRC check
// still covers the raw frame bytes.
type captureReader struct {
	br   *bufio.Reader
	into *[]byte
}

func (c *captureReader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err == nil {
		*c.into = append(*c.into, b)
	}
	return b, err
}
