// Package storetest is the shared conformance suite for store.Engine
// implementations, mirroring mpc/mediumtest: every backend — the
// in-memory Store and the disk-backed Disk — must expose identical
// database semantics (idempotent puts, high-water summaries with a
// generation counter, tombstoned evictions, quota enforcement), so the
// layers above can treat them as interchangeable. Durable engines are
// additionally run through clean reload and kill-and-reload crash
// recovery.
package storetest

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"sos/internal/clock"
	"sos/internal/id"
	"sos/internal/msg"
	"sos/internal/store"
)

// World is one isolated storage universe. Open opens an engine over the
// universe's durable state; calling it again models a process restart.
// For volatile backends every Open returns a fresh empty engine.
type World interface {
	Open(t *testing.T, opts store.Options) store.Engine
	// Persistent reports whether state written through one Open survives
	// into the next.
	Persistent() bool
}

// owner and peers used throughout the suite.
var (
	owner = id.NewUserID("conformance-owner")
	bob   = id.NewUserID("conformance-bob")
	carol = id.NewUserID("conformance-carol")
)

var t0 = time.Date(2017, 4, 6, 0, 0, 0, 0, time.UTC)

// Run exercises the full conformance suite, building a fresh World per
// subtest.
func Run(t *testing.T, mk func(t *testing.T) World) {
	t.Run("PutGetRoundTrip", func(t *testing.T) { testPutGet(t, mk(t)) })
	t.Run("DuplicatePuts", func(t *testing.T) { testDuplicates(t, mk(t)) })
	t.Run("SummaryAndGeneration", func(t *testing.T) { testSummary(t, mk(t)) })
	t.Run("MissingGapWalk", func(t *testing.T) { testMissing(t, mk(t)) })
	t.Run("ChangesDelta", func(t *testing.T) { testChanges(t, mk(t)) })
	t.Run("ChangesStriped", func(t *testing.T) { testChangesStriped(t, mk(t)) })
	t.Run("Subscriptions", func(t *testing.T) { testSubscriptions(t, mk(t)) })
	t.Run("NextSeqResumes", func(t *testing.T) { testNextSeq(t, mk(t)) })
	t.Run("QuotaEviction", func(t *testing.T) { testQuotaEviction(t, mk(t)) })
	t.Run("TTLExpiry", func(t *testing.T) { testTTLExpiry(t, mk(t)) })
	t.Run("Reload", func(t *testing.T) { testReload(t, mk(t)) })
	t.Run("CrashRecovery", func(t *testing.T) { testCrashRecovery(t, mk(t)) })
	t.Run("EvictionSurvivesReload", func(t *testing.T) { testEvictionReload(t, mk(t)) })
}

func post(author id.UserID, seq uint64, text string) *msg.Message {
	return &msg.Message{
		Author:  author,
		Seq:     seq,
		Kind:    msg.KindPost,
		Created: t0.Add(time.Duration(seq) * time.Minute),
		Payload: []byte(text),
	}
}

func mustPut(t *testing.T, e store.Engine, m *msg.Message) {
	t.Helper()
	added, err := e.Put(m)
	if err != nil {
		t.Fatalf("Put(%v): %v", m.Ref(), err)
	}
	if !added {
		t.Fatalf("Put(%v): unexpectedly a duplicate", m.Ref())
	}
}

func testPutGet(t *testing.T, w World) {
	e := w.Open(t, store.Options{})
	defer e.Close()
	if e.Owner() != owner {
		t.Errorf("Owner = %s, want %s", e.Owner(), owner)
	}
	m := post(bob, 1, "hello")
	mustPut(t, e, m)
	got, ok := e.Get(m.Ref())
	if !ok {
		t.Fatal("Get: not found")
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("Get = %+v, want %+v", got, m)
	}
	// The engine must have cloned on insert and hand out clones.
	m.Payload[0] = 'X'
	if again, _ := e.Get(m.Ref()); string(again.Payload) != "hello" {
		t.Error("engine shares storage with the caller")
	}
	got.Payload[0] = 'Y'
	if again, _ := e.Get(m.Ref()); string(again.Payload) != "hello" {
		t.Error("engine shares storage with readers")
	}
	if !e.Has(m.Ref()) || e.Len() != 1 {
		t.Errorf("Has/Len = %v/%d, want true/1", e.Has(m.Ref()), e.Len())
	}
	if _, err := e.Put(&msg.Message{}); err == nil {
		t.Error("invalid message accepted")
	}
}

func testDuplicates(t *testing.T, w World) {
	e := w.Open(t, store.Options{})
	defer e.Close()
	m := post(bob, 1, "once")
	mustPut(t, e, m)
	added, err := e.Put(m)
	if err != nil || added {
		t.Errorf("duplicate Put = (%v, %v), want (false, nil)", added, err)
	}
	if st := e.Stats(); st.Puts != 1 || st.Duplicates != 1 {
		t.Errorf("stats = %+v, want 1 put and 1 duplicate", st)
	}
}

func testSummary(t *testing.T, w World) {
	e := w.Open(t, store.Options{})
	defer e.Close()
	g0 := e.Generation()
	mustPut(t, e, post(bob, 2, "b2"))
	mustPut(t, e, post(carol, 5, "c5"))
	if e.Generation() == g0 {
		t.Error("generation did not advance on summary changes")
	}
	want := map[id.UserID]uint64{bob: 2, carol: 5}
	if got := e.Summary(); !reflect.DeepEqual(got, want) {
		t.Errorf("Summary = %v, want %v", got, want)
	}
	g1 := e.Generation()
	mustPut(t, e, post(bob, 1, "older")) // holdings change, summary does not
	if e.Generation() != g1 {
		t.Error("generation advanced without a summary change")
	}
	if e.MaxSeq(bob) != 2 || e.MaxSeq(owner) != 0 {
		t.Errorf("MaxSeq = %d/%d, want 2/0", e.MaxSeq(bob), e.MaxSeq(owner))
	}
}

func testMissing(t *testing.T, w World) {
	e := w.Open(t, store.Options{})
	defer e.Close()
	mustPut(t, e, post(bob, 1, "b1"))
	mustPut(t, e, post(bob, 3, "b3"))
	// Sparse, large sequence numbers must not cost O(upto).
	mustPut(t, e, post(bob, 1_000_000, "way out"))
	if got, want := e.Missing(bob, 5), []uint64{2, 4, 5}; !reflect.DeepEqual(got, want) {
		t.Errorf("Missing(bob, 5) = %v, want %v", got, want)
	}
	if got := e.Missing(carol, 2); !reflect.DeepEqual(got, []uint64{1, 2}) {
		t.Errorf("Missing(unknown author) = %v, want [1 2]", got)
	}
	if got := e.Missing(bob, 0); got != nil {
		t.Errorf("Missing(upto=0) = %v, want nil", got)
	}
	if got := e.MessagesFrom(bob, 1); len(got) != 2 || got[0].Seq != 3 {
		t.Errorf("MessagesFrom(bob, 1) = %d messages, want [3, 1000000]", len(got))
	}
	if got := e.Select(bob, []uint64{1, 2, 3}); len(got) != 2 {
		t.Errorf("Select = %d messages, want 2", len(got))
	}
}

func testSubscriptions(t *testing.T, w World) {
	e := w.Open(t, store.Options{})
	defer e.Close()
	if e.IsSubscribed(bob) {
		t.Error("fresh engine subscribed to bob")
	}
	e.Subscribe(bob)
	e.Subscribe(carol)
	e.Subscribe(bob) // idempotent
	if !e.IsSubscribed(bob) || len(e.Subscriptions()) != 2 {
		t.Errorf("subscriptions = %v", e.Subscriptions())
	}
	e.Unsubscribe(bob)
	if e.IsSubscribed(bob) {
		t.Error("unsubscribe did not take effect")
	}
}

func testNextSeq(t *testing.T, w World) {
	e := w.Open(t, store.Options{})
	defer e.Close()
	if got := e.NextSeq(); got != 1 {
		t.Errorf("first NextSeq = %d, want 1", got)
	}
	mustPut(t, e, post(owner, 7, "own action from the past"))
	if got := e.NextSeq(); got != 8 {
		t.Errorf("NextSeq after own seq 7 = %d, want 8", got)
	}
}

func testQuotaEviction(t *testing.T, w World) {
	clk := clock.NewVirtual(t0)
	var drops []store.Eviction
	e := w.Open(t, store.Options{
		MaxMessages: 2,
		Clock:       clk,
		OnEvict:     func(ev store.Eviction) { drops = append(drops, ev) },
	})
	defer e.Close()
	mustPut(t, e, post(owner, 1, "own, protected"))
	clk.Advance(time.Minute)
	mustPut(t, e, post(bob, 1, "oldest cargo"))
	clk.Advance(time.Minute)
	mustPut(t, e, post(carol, 1, "newer cargo"))

	if e.Len() != 2 {
		t.Fatalf("Len = %d, want 2", e.Len())
	}
	if e.Has(msg.Ref{Author: owner, Seq: 1}) == false {
		t.Error("owner's message was evicted")
	}
	if e.Has(msg.Ref{Author: bob, Seq: 1}) {
		t.Error("drop-oldest kept the oldest foreign message")
	}
	if len(drops) != 1 || drops[0].Reason != store.EvictCapacity {
		t.Fatalf("drops = %+v, want one capacity eviction", drops)
	}
	// Tombstone semantics: not missing, not re-admittable.
	if got := e.Missing(bob, 1); got != nil {
		t.Errorf("Missing includes an evicted seq: %v", got)
	}
	if added, _ := e.Put(post(bob, 1, "return of the cargo")); added {
		t.Error("evicted ref re-admitted")
	}
	if st := e.Stats(); st.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", st.Evictions)
	}
}

func testTTLExpiry(t *testing.T, w World) {
	clk := clock.NewVirtual(t0)
	e := w.Open(t, store.Options{Policy: store.TTL(time.Hour), Clock: clk})
	defer e.Close()
	m := post(bob, 1, "cargo")
	m.Created = clk.Now()
	mustPut(t, e, m)
	own := post(owner, 1, "own")
	own.Created = clk.Now()
	mustPut(t, e, own)

	if n := e.SweepExpired(); n != 0 {
		t.Fatalf("premature expiry: %d", n)
	}
	clk.Advance(2 * time.Hour)
	if n := e.SweepExpired(); n != 1 {
		t.Fatalf("SweepExpired = %d, want 1", n)
	}
	if e.Has(m.Ref()) {
		t.Error("expired foreign message survived")
	}
	if !e.Has(own.Ref()) {
		t.Error("owner's message expired")
	}
	if st := e.Stats(); st.Expirations != 1 {
		t.Errorf("Expirations = %d, want 1", st.Expirations)
	}
}

// testReload checks the clean shutdown/reopen path on durable engines.
func testReload(t *testing.T, w World) {
	if !w.Persistent() {
		t.Skip("volatile engine")
	}
	e := w.Open(t, store.Options{})
	mustPut(t, e, post(bob, 1, "survives"))
	mustPut(t, e, post(owner, 2, "own survives"))
	e.Subscribe(carol)
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re := w.Open(t, store.Options{})
	defer re.Close()
	if re.Len() != 2 || !re.Has(msg.Ref{Author: bob, Seq: 1}) {
		t.Errorf("reloaded Len = %d, want 2", re.Len())
	}
	if !re.IsSubscribed(carol) {
		t.Error("subscription lost across reload")
	}
	if got := re.NextSeq(); got != 3 {
		t.Errorf("NextSeq after reload = %d, want 3 (own seq continues)", got)
	}
	if got := re.Summary()[bob]; got != 1 {
		t.Errorf("reloaded summary[bob] = %d, want 1", got)
	}
}

// testCrashRecovery kills the engine — no Close, the process just goes
// away — and reopens over the same state.
func testCrashRecovery(t *testing.T, w World) {
	if !w.Persistent() {
		t.Skip("volatile engine")
	}
	e := w.Open(t, store.Options{})
	mustPut(t, e, post(bob, 1, "acked before the crash"))
	e.Subscribe(bob)
	e.Unsubscribe(bob)
	e.Subscribe(carol)
	// Crash: drop the handle on the floor.

	re := w.Open(t, store.Options{})
	defer re.Close()
	if !re.Has(msg.Ref{Author: bob, Seq: 1}) {
		t.Error("message lost in crash")
	}
	if re.IsSubscribed(bob) || !re.IsSubscribed(carol) {
		t.Errorf("subscription replay wrong: bob=%v carol=%v",
			re.IsSubscribed(bob), re.IsSubscribed(carol))
	}
}

// testEvictionReload checks that tombstones are durable: a message
// evicted before a restart must not become requestable again after it.
func testEvictionReload(t *testing.T, w World) {
	if !w.Persistent() {
		t.Skip("volatile engine")
	}
	e := w.Open(t, store.Options{MaxMessages: 1})
	mustPut(t, e, post(bob, 1, "evict me"))
	mustPut(t, e, post(carol, 1, "usurper"))
	if e.Has(msg.Ref{Author: bob, Seq: 1}) {
		t.Fatal("expected bob#1 evicted")
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re := w.Open(t, store.Options{MaxMessages: 1})
	defer re.Close()
	if got := re.Missing(bob, 1); got != nil {
		t.Errorf("evicted ref requestable after reload: Missing = %v", got)
	}
	if added, _ := re.Put(post(bob, 1, "zombie")); added {
		t.Error("evicted ref re-admitted after reload")
	}
	if !re.Has(msg.Ref{Author: carol, Seq: 1}) {
		t.Error("survivor lost across reload")
	}
}

// testChangesStriped checks delta correctness when the summary is
// sharded: interleaved updates to authors in *different* stripes must
// merge into one exact delta regardless of which stripe's log holds
// which generation, and the union of the stripe snapshots must equal
// the merged Summary.
func testChangesStriped(t *testing.T, w World) {
	e := w.Open(t, store.Options{})
	defer e.Close()

	// Collect one author per distinct stripe (at least three stripes).
	stripeFor := func(u id.UserID) int {
		for i := 0; i < e.SummaryStripes(); i++ {
			for a := range e.SummaryStripe(i) {
				if a == u {
					return i
				}
			}
		}
		return -1
	}
	var authors []id.UserID
	seen := map[int]bool{}
	for i := 0; len(authors) < 3 && i < 256; i++ {
		u := id.NewUserID(fmt.Sprintf("striped-author-%d", i))
		mustPut(t, e, post(u, 1, "probe"))
		s := stripeFor(u)
		if s < 0 {
			t.Fatalf("author %s in no stripe snapshot", u)
		}
		if !seen[s] {
			seen[s] = true
			authors = append(authors, u)
		}
	}
	if len(authors) < 3 {
		t.Fatal("could not find authors in 3 distinct stripes")
	}

	base := e.Generation()
	// Interleave bumps across the stripes so consecutive generations land
	// in different stripe logs.
	for seq := uint64(2); seq <= 5; seq++ {
		for _, u := range authors {
			mustPut(t, e, post(u, seq, "interleaved"))
		}
	}
	delta, ok := e.Changes(base)
	if !ok {
		t.Fatalf("Changes(%d) not answerable", base)
	}
	want := map[id.UserID]uint64{}
	for _, u := range authors {
		want[u] = 5
	}
	if !reflect.DeepEqual(delta, want) {
		t.Errorf("striped Changes(%d) = %v, want %v", base, delta, want)
	}

	// A mid-stream base must see only the later updates, still merged
	// across stripes at each author's latest sequence.
	mid := e.Generation()
	mustPut(t, e, post(authors[0], 6, "late"))
	mustPut(t, e, post(authors[2], 6, "late"))
	mustPut(t, e, post(authors[0], 7, "later"))
	delta, ok = e.Changes(mid)
	if !ok {
		t.Fatalf("Changes(%d) not answerable", mid)
	}
	midWant := map[id.UserID]uint64{authors[0]: 7, authors[2]: 6}
	if !reflect.DeepEqual(delta, midWant) {
		t.Errorf("mid-stream Changes(%d) = %v, want %v", mid, delta, midWant)
	}

	// Stripe union == Summary: every author in exactly one stripe.
	union := map[id.UserID]uint64{}
	for i := 0; i < e.SummaryStripes(); i++ {
		for a, seq := range e.SummaryStripe(i) {
			if _, dup := union[a]; dup {
				t.Errorf("author %s appears in two stripes", a)
			}
			union[a] = seq
		}
	}
	if full := e.Summary(); !reflect.DeepEqual(union, full) {
		t.Errorf("stripe union (%d entries) != Summary (%d entries)", len(union), len(full))
	}
}

// testChanges checks the delta-advertisement contract: Changes(sinceGen)
// returns exactly the summary entries that moved after sinceGen, answers
// ok=false for unanswerable bases, and stays consistent across reloads.
func testChanges(t *testing.T, w World) {
	e := w.Open(t, store.Options{})
	defer e.Close()

	mustPut(t, e, post(bob, 1, "b1"))
	mustPut(t, e, post(carol, 1, "c1"))
	base := e.Generation()

	// Nothing changed yet: the delta since base is empty but answerable.
	delta, ok := e.Changes(base)
	if !ok || len(delta) != 0 {
		t.Fatalf("Changes(%d) = %v, %v; want empty, true", base, delta, ok)
	}

	mustPut(t, e, post(bob, 2, "b2"))
	mustPut(t, e, post(bob, 3, "b3"))
	delta, ok = e.Changes(base)
	if !ok {
		t.Fatalf("Changes(%d) not answerable after puts", base)
	}
	if want := map[id.UserID]uint64{bob: 3}; !reflect.DeepEqual(delta, want) {
		t.Errorf("Changes(%d) = %v, want %v", base, delta, want)
	}

	// A delta from generation zero must match the full summary while the
	// change log covers all history.
	if delta, ok = e.Changes(0); ok {
		if want := e.Summary(); !reflect.DeepEqual(delta, want) {
			t.Errorf("Changes(0) = %v, want full summary %v", delta, want)
		}
	}

	// Bases the engine cannot know about are unanswerable.
	if _, ok := e.Changes(e.Generation() + 1); ok {
		t.Error("Changes(future generation) answered ok")
	}

	if !w.Persistent() {
		return
	}
	gen := e.Generation()
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	re := w.Open(t, store.Options{})
	defer re.Close()
	if got := re.Generation(); got != gen {
		t.Fatalf("reloaded generation = %d, want %d", got, gen)
	}
	delta, ok = re.Changes(base)
	if !ok {
		t.Fatalf("reloaded Changes(%d) not answerable", base)
	}
	if want := map[id.UserID]uint64{bob: 3}; !reflect.DeepEqual(delta, want) {
		t.Errorf("reloaded Changes(%d) = %v, want %v", base, delta, want)
	}
}
