package store

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"sos/internal/id"
	"sos/internal/msg"
)

var (
	alice = id.NewUserID("alice")
	bob   = id.NewUserID("bob")
	carol = id.NewUserID("carol")
)

func post(author id.UserID, seq uint64, text string) *msg.Message {
	return &msg.Message{
		Author:  author,
		Seq:     seq,
		Kind:    msg.KindPost,
		Created: time.Date(2017, 4, 6, 0, 0, 0, 0, time.UTC).Add(time.Duration(seq) * time.Minute),
		Payload: []byte(text),
	}
}

func mustPut(t *testing.T, s *Store, m *msg.Message) {
	t.Helper()
	added, err := s.Put(m)
	if err != nil {
		t.Fatalf("Put(%v): %v", m.Ref(), err)
	}
	if !added {
		t.Fatalf("Put(%v): duplicate", m.Ref())
	}
}

func TestPutGet(t *testing.T) {
	s := New(alice)
	m := post(bob, 1, "hi")
	mustPut(t, s, m)

	got, ok := s.Get(m.Ref())
	if !ok {
		t.Fatal("Get: not found")
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("Get = %+v, want %+v", got, m)
	}
	if !s.Has(m.Ref()) {
		t.Error("Has = false, want true")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestPutDuplicateIdempotent(t *testing.T) {
	s := New(alice)
	m := post(bob, 1, "hi")
	mustPut(t, s, m)
	added, err := s.Put(m)
	if err != nil {
		t.Fatalf("Put dup: %v", err)
	}
	if added {
		t.Error("duplicate Put reported as new")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestPutRejectsInvalid(t *testing.T) {
	s := New(alice)
	if _, err := s.Put(&msg.Message{}); err == nil {
		t.Error("invalid message accepted")
	}
}

func TestPutIsolatesCaller(t *testing.T) {
	s := New(alice)
	m := post(bob, 1, "original")
	mustPut(t, s, m)
	m.Payload[0] = 'X' // caller mutates after insert
	got, _ := s.Get(m.Ref())
	if string(got.Payload) != "original" {
		t.Error("store shares storage with caller")
	}
}

func TestSummaryTracksMaxSeq(t *testing.T) {
	s := New(alice)
	mustPut(t, s, post(bob, 2, "b2"))
	mustPut(t, s, post(bob, 1, "b1"))
	mustPut(t, s, post(carol, 5, "c5"))

	want := map[id.UserID]uint64{bob: 2, carol: 5}
	if got := s.Summary(); !reflect.DeepEqual(got, want) {
		t.Errorf("Summary = %v, want %v", got, want)
	}
	if s.MaxSeq(bob) != 2 {
		t.Errorf("MaxSeq(bob) = %d, want 2", s.MaxSeq(bob))
	}
	if s.MaxSeq(alice) != 0 {
		t.Errorf("MaxSeq(alice) = %d, want 0", s.MaxSeq(alice))
	}
}

func TestMissing(t *testing.T) {
	s := New(alice)
	mustPut(t, s, post(bob, 1, "b1"))
	mustPut(t, s, post(bob, 3, "b3"))

	got := s.Missing(bob, 5)
	want := []uint64{2, 4, 5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Missing = %v, want %v", got, want)
	}
	if missing := s.Missing(carol, 2); !reflect.DeepEqual(missing, []uint64{1, 2}) {
		t.Errorf("Missing(unknown author) = %v, want [1 2]", missing)
	}
	if missing := s.Missing(bob, 0); missing != nil {
		t.Errorf("Missing(upto=0) = %v, want nil", missing)
	}
}

func TestMessagesFromOrdered(t *testing.T) {
	s := New(alice)
	mustPut(t, s, post(bob, 3, "b3"))
	mustPut(t, s, post(bob, 1, "b1"))
	mustPut(t, s, post(bob, 2, "b2"))

	got := s.MessagesFrom(bob, 1)
	if len(got) != 2 || got[0].Seq != 2 || got[1].Seq != 3 {
		t.Errorf("MessagesFrom(bob, 1) returned seqs %v", seqsOf(got))
	}
	if all := s.MessagesFrom(bob, 0); len(all) != 3 {
		t.Errorf("MessagesFrom(bob, 0) = %d messages, want 3", len(all))
	}
	if none := s.MessagesFrom(carol, 0); none != nil {
		t.Errorf("MessagesFrom(carol) = %v, want nil", none)
	}
}

func TestSelect(t *testing.T) {
	s := New(alice)
	mustPut(t, s, post(bob, 1, "b1"))
	mustPut(t, s, post(bob, 3, "b3"))
	got := s.Select(bob, []uint64{1, 2, 3})
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 3 {
		t.Errorf("Select returned seqs %v, want [1 3]", seqsOf(got))
	}
}

func TestAllDeterministicOrder(t *testing.T) {
	s := New(alice)
	mustPut(t, s, post(carol, 1, "c1"))
	mustPut(t, s, post(bob, 2, "b2"))
	mustPut(t, s, post(bob, 1, "b1"))

	first := refsOf(s.All())
	for i := 0; i < 5; i++ {
		if got := refsOf(s.All()); !reflect.DeepEqual(got, first) {
			t.Fatalf("All order unstable: %v vs %v", got, first)
		}
	}
}

func TestAuthors(t *testing.T) {
	s := New(alice)
	mustPut(t, s, post(carol, 1, "c1"))
	mustPut(t, s, post(bob, 1, "b1"))
	authors := s.Authors()
	if len(authors) != 2 {
		t.Fatalf("Authors = %v, want 2 entries", authors)
	}
}

func TestSubscriptions(t *testing.T) {
	s := New(alice)
	if s.IsSubscribed(bob) {
		t.Error("new store subscribed to bob")
	}
	s.Subscribe(bob)
	s.Subscribe(carol)
	s.Subscribe(bob) // idempotent
	if !s.IsSubscribed(bob) || !s.IsSubscribed(carol) {
		t.Error("subscriptions not recorded")
	}
	if got := len(s.Subscriptions()); got != 2 {
		t.Errorf("Subscriptions len = %d, want 2", got)
	}
	s.Unsubscribe(bob)
	if s.IsSubscribed(bob) {
		t.Error("unsubscribe did not take effect")
	}
}

func TestNextSeqMonotonic(t *testing.T) {
	s := New(alice)
	if got := s.NextSeq(); got != 1 {
		t.Errorf("first NextSeq = %d, want 1", got)
	}
	if got := s.NextSeq(); got != 2 {
		t.Errorf("second NextSeq = %d, want 2", got)
	}
}

// TestNextSeqResumesAfterOwnMessages: when the owner's own messages are
// loaded from a snapshot, NextSeq must continue after them, never reusing
// a sequence number.
func TestNextSeqResumesAfterOwnMessages(t *testing.T) {
	s := New(alice)
	mustPut(t, s, post(alice, 7, "old post"))
	if got := s.NextSeq(); got != 8 {
		t.Errorf("NextSeq after loading own seq 7 = %d, want 8", got)
	}
}

func TestConcurrentPutters(t *testing.T) {
	s := New(alice)
	var wg sync.WaitGroup
	const writers, perWriter = 8, 50
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			author := id.NewUserID(fmt.Sprintf("author-%d", w))
			for i := 1; i <= perWriter; i++ {
				if _, err := s.Put(post(author, uint64(i), "x")); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Len(); got != writers*perWriter {
		t.Errorf("Len = %d, want %d", got, writers*perWriter)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := New(alice)
	mustPut(t, s, post(bob, 1, "b1"))
	mustPut(t, s, post(bob, 2, "b2"))
	mustPut(t, s, post(carol, 9, "c9"))
	s.Subscribe(bob)
	s.Subscribe(carol)

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}

	restored := New(alice)
	if err := restored.Load(&buf); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !reflect.DeepEqual(refsOf(restored.All()), refsOf(s.All())) {
		t.Error("restored messages differ")
	}
	if !reflect.DeepEqual(restored.Subscriptions(), s.Subscriptions()) {
		t.Error("restored subscriptions differ")
	}
	if !reflect.DeepEqual(restored.Summary(), s.Summary()) {
		t.Error("restored summary differs")
	}
}

func TestLoadCorrupt(t *testing.T) {
	tests := []struct {
		name string
		give []byte
	}{
		{name: "empty", give: nil},
		{name: "truncated count", give: []byte{0x80}},
		{name: "garbage body", give: []byte{1, 5, 1, 2, 3, 4, 5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := New(alice)
			if err := s.Load(bytes.NewReader(tt.give)); err == nil {
				t.Error("Load accepted corrupt snapshot")
			}
		})
	}
}

// TestSummaryMonotoneProperty: inserting any batch of messages never
// lowers any author's summary entry.
func TestSummaryMonotoneProperty(t *testing.T) {
	f := func(seqsRaw []uint16) bool {
		s := New(alice)
		prev := make(map[id.UserID]uint64)
		for _, raw := range seqsRaw {
			seq := uint64(raw%64) + 1
			author := bob
			if raw%2 == 0 {
				author = carol
			}
			if _, err := s.Put(post(author, seq, "m")); err != nil {
				return false
			}
			cur := s.Summary()
			for a, v := range prev {
				if cur[a] < v {
					return false
				}
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestMissingComplementProperty: for any set of held sequences, Missing
// plus held must exactly cover 1..upto.
func TestMissingComplementProperty(t *testing.T) {
	f := func(heldRaw []uint16, uptoRaw uint8) bool {
		upto := uint64(uptoRaw%40) + 1
		s := New(alice)
		held := make(map[uint64]bool)
		for _, raw := range heldRaw {
			seq := uint64(raw%40) + 1
			if !held[seq] {
				if _, err := s.Put(post(bob, seq, "m")); err != nil {
					return false
				}
				held[seq] = true
			}
		}
		missing := s.Missing(bob, upto)
		missingSet := make(map[uint64]bool, len(missing))
		for _, seq := range missing {
			if seq < 1 || seq > upto || held[seq] {
				return false
			}
			missingSet[seq] = true
		}
		for seq := uint64(1); seq <= upto; seq++ {
			if !held[seq] && !missingSet[seq] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func seqsOf(ms []*msg.Message) []uint64 {
	out := make([]uint64, len(ms))
	for i, m := range ms {
		out[i] = m.Seq
	}
	return out
}

func refsOf(ms []*msg.Message) []msg.Ref {
	out := make([]msg.Ref, len(ms))
	for i, m := range ms {
		out[i] = m.Ref()
	}
	return out
}
