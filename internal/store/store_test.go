package store

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"sos/internal/clock"
	"sos/internal/id"
	"sos/internal/msg"
)

var (
	alice = id.NewUserID("alice")
	bob   = id.NewUserID("bob")
	carol = id.NewUserID("carol")
)

func post(author id.UserID, seq uint64, text string) *msg.Message {
	return &msg.Message{
		Author:  author,
		Seq:     seq,
		Kind:    msg.KindPost,
		Created: time.Date(2017, 4, 6, 0, 0, 0, 0, time.UTC).Add(time.Duration(seq) * time.Minute),
		Payload: []byte(text),
	}
}

func mustPut(t *testing.T, s *Store, m *msg.Message) {
	t.Helper()
	added, err := s.Put(m)
	if err != nil {
		t.Fatalf("Put(%v): %v", m.Ref(), err)
	}
	if !added {
		t.Fatalf("Put(%v): duplicate", m.Ref())
	}
}

func TestPutGet(t *testing.T) {
	s := New(alice)
	m := post(bob, 1, "hi")
	mustPut(t, s, m)

	got, ok := s.Get(m.Ref())
	if !ok {
		t.Fatal("Get: not found")
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("Get = %+v, want %+v", got, m)
	}
	if !s.Has(m.Ref()) {
		t.Error("Has = false, want true")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestPutDuplicateIdempotent(t *testing.T) {
	s := New(alice)
	m := post(bob, 1, "hi")
	mustPut(t, s, m)
	added, err := s.Put(m)
	if err != nil {
		t.Fatalf("Put dup: %v", err)
	}
	if added {
		t.Error("duplicate Put reported as new")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestPutRejectsInvalid(t *testing.T) {
	s := New(alice)
	if _, err := s.Put(&msg.Message{}); err == nil {
		t.Error("invalid message accepted")
	}
}

func TestPutIsolatesCaller(t *testing.T) {
	s := New(alice)
	m := post(bob, 1, "original")
	mustPut(t, s, m)
	m.Payload[0] = 'X' // caller mutates after insert
	got, _ := s.Get(m.Ref())
	if string(got.Payload) != "original" {
		t.Error("store shares storage with caller")
	}
}

func TestSummaryTracksMaxSeq(t *testing.T) {
	s := New(alice)
	mustPut(t, s, post(bob, 2, "b2"))
	mustPut(t, s, post(bob, 1, "b1"))
	mustPut(t, s, post(carol, 5, "c5"))

	want := map[id.UserID]uint64{bob: 2, carol: 5}
	if got := s.Summary(); !reflect.DeepEqual(got, want) {
		t.Errorf("Summary = %v, want %v", got, want)
	}
	if s.MaxSeq(bob) != 2 {
		t.Errorf("MaxSeq(bob) = %d, want 2", s.MaxSeq(bob))
	}
	if s.MaxSeq(alice) != 0 {
		t.Errorf("MaxSeq(alice) = %d, want 0", s.MaxSeq(alice))
	}
}

func TestMissing(t *testing.T) {
	s := New(alice)
	mustPut(t, s, post(bob, 1, "b1"))
	mustPut(t, s, post(bob, 3, "b3"))

	got := s.Missing(bob, 5)
	want := []uint64{2, 4, 5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Missing = %v, want %v", got, want)
	}
	if missing := s.Missing(carol, 2); !reflect.DeepEqual(missing, []uint64{1, 2}) {
		t.Errorf("Missing(unknown author) = %v, want [1 2]", missing)
	}
	if missing := s.Missing(bob, 0); missing != nil {
		t.Errorf("Missing(upto=0) = %v, want nil", missing)
	}
}

func TestMessagesFromOrdered(t *testing.T) {
	s := New(alice)
	mustPut(t, s, post(bob, 3, "b3"))
	mustPut(t, s, post(bob, 1, "b1"))
	mustPut(t, s, post(bob, 2, "b2"))

	got := s.MessagesFrom(bob, 1)
	if len(got) != 2 || got[0].Seq != 2 || got[1].Seq != 3 {
		t.Errorf("MessagesFrom(bob, 1) returned seqs %v", seqsOf(got))
	}
	if all := s.MessagesFrom(bob, 0); len(all) != 3 {
		t.Errorf("MessagesFrom(bob, 0) = %d messages, want 3", len(all))
	}
	if none := s.MessagesFrom(carol, 0); none != nil {
		t.Errorf("MessagesFrom(carol) = %v, want nil", none)
	}
}

func TestSelect(t *testing.T) {
	s := New(alice)
	mustPut(t, s, post(bob, 1, "b1"))
	mustPut(t, s, post(bob, 3, "b3"))
	got := s.Select(bob, []uint64{1, 2, 3})
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 3 {
		t.Errorf("Select returned seqs %v, want [1 3]", seqsOf(got))
	}
}

func TestAllDeterministicOrder(t *testing.T) {
	s := New(alice)
	mustPut(t, s, post(carol, 1, "c1"))
	mustPut(t, s, post(bob, 2, "b2"))
	mustPut(t, s, post(bob, 1, "b1"))

	first := refsOf(s.All())
	for i := 0; i < 5; i++ {
		if got := refsOf(s.All()); !reflect.DeepEqual(got, first) {
			t.Fatalf("All order unstable: %v vs %v", got, first)
		}
	}
}

func TestAuthors(t *testing.T) {
	s := New(alice)
	mustPut(t, s, post(carol, 1, "c1"))
	mustPut(t, s, post(bob, 1, "b1"))
	authors := s.Authors()
	if len(authors) != 2 {
		t.Fatalf("Authors = %v, want 2 entries", authors)
	}
}

func TestSubscriptions(t *testing.T) {
	s := New(alice)
	if s.IsSubscribed(bob) {
		t.Error("new store subscribed to bob")
	}
	s.Subscribe(bob)
	s.Subscribe(carol)
	s.Subscribe(bob) // idempotent
	if !s.IsSubscribed(bob) || !s.IsSubscribed(carol) {
		t.Error("subscriptions not recorded")
	}
	if got := len(s.Subscriptions()); got != 2 {
		t.Errorf("Subscriptions len = %d, want 2", got)
	}
	s.Unsubscribe(bob)
	if s.IsSubscribed(bob) {
		t.Error("unsubscribe did not take effect")
	}
}

func TestNextSeqMonotonic(t *testing.T) {
	s := New(alice)
	if got := s.NextSeq(); got != 1 {
		t.Errorf("first NextSeq = %d, want 1", got)
	}
	if got := s.NextSeq(); got != 2 {
		t.Errorf("second NextSeq = %d, want 2", got)
	}
}

// TestNextSeqResumesAfterOwnMessages: when the owner's own messages are
// loaded from a snapshot, NextSeq must continue after them, never reusing
// a sequence number.
func TestNextSeqResumesAfterOwnMessages(t *testing.T) {
	s := New(alice)
	mustPut(t, s, post(alice, 7, "old post"))
	if got := s.NextSeq(); got != 8 {
		t.Errorf("NextSeq after loading own seq 7 = %d, want 8", got)
	}
}

func TestConcurrentPutters(t *testing.T) {
	s := New(alice)
	var wg sync.WaitGroup
	const writers, perWriter = 8, 50
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			author := id.NewUserID(fmt.Sprintf("author-%d", w))
			for i := 1; i <= perWriter; i++ {
				if _, err := s.Put(post(author, uint64(i), "x")); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Len(); got != writers*perWriter {
		t.Errorf("Len = %d, want %d", got, writers*perWriter)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := New(alice)
	mustPut(t, s, post(bob, 1, "b1"))
	mustPut(t, s, post(bob, 2, "b2"))
	mustPut(t, s, post(carol, 9, "c9"))
	mustPut(t, s, post(alice, 3, "mine"))
	s.Subscribe(bob)
	s.Subscribe(carol)
	s.applyEvict(msg.Ref{Author: carol, Seq: 4}) // tombstone without holding

	var buf bytes.Buffer
	if err := writeSnapshot(&buf, s.snapshot()); err != nil {
		t.Fatalf("writeSnapshot: %v", err)
	}

	restored := New(alice)
	if err := readSnapshot(&buf, restored); err != nil {
		t.Fatalf("readSnapshot: %v", err)
	}
	if !reflect.DeepEqual(refsOf(restored.All()), refsOf(s.All())) {
		t.Error("restored messages differ")
	}
	if !reflect.DeepEqual(restored.Subscriptions(), s.Subscriptions()) {
		t.Error("restored subscriptions differ")
	}
	if !reflect.DeepEqual(restored.Summary(), s.Summary()) {
		t.Error("restored summary differs")
	}
	if got := restored.Missing(carol, 9); !reflect.DeepEqual(got, []uint64{1, 2, 3, 5, 6, 7, 8}) {
		t.Errorf("restored tombstones lost: Missing(carol) = %v", got)
	}
	if got := restored.NextSeq(); got != 4 {
		t.Errorf("NextSeq after restore = %d, want 4", got)
	}
}

func TestEvictionDropOldest(t *testing.T) {
	clk := clock.NewVirtual(time.Date(2017, 4, 6, 0, 0, 0, 0, time.UTC))
	var drops []Eviction
	s := NewMemory(alice, Options{
		MaxMessages: 2,
		Clock:       clk,
		OnEvict:     func(ev Eviction) { drops = append(drops, ev) },
	})
	mustPut(t, s, post(bob, 1, "b1"))
	clk.Advance(time.Minute)
	mustPut(t, s, post(carol, 1, "c1"))
	clk.Advance(time.Minute)
	mustPut(t, s, post(bob, 2, "b2")) // over quota: bob#1 is oldest

	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if s.Has(msg.Ref{Author: bob, Seq: 1}) {
		t.Error("oldest message not evicted")
	}
	if len(drops) != 1 || drops[0].Ref != (msg.Ref{Author: bob, Seq: 1}) || drops[0].Reason != EvictCapacity {
		t.Errorf("drops = %+v, want one capacity eviction of bob#1", drops)
	}
	// The advertised summary keeps the high-water mark.
	if s.MaxSeq(bob) != 2 {
		t.Errorf("MaxSeq(bob) = %d, want 2", s.MaxSeq(bob))
	}
	// The tombstone blocks both re-request and re-admission.
	if got := s.Missing(bob, 2); got != nil {
		t.Errorf("Missing(bob) = %v, want nil (evicted seq tombstoned)", got)
	}
	if added, err := s.Put(post(bob, 1, "b1 again")); err != nil || added {
		t.Errorf("re-Put of evicted ref = (%v, %v), want (false, nil)", added, err)
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Duplicates != 1 {
		t.Errorf("stats = %+v, want 1 eviction and 1 duplicate", st)
	}
}

func TestEvictionNeverDropsOwnerMessages(t *testing.T) {
	s := NewMemory(alice, Options{MaxMessages: 1})
	mustPut(t, s, post(alice, 1, "mine"))
	mustPut(t, s, post(alice, 2, "also mine"))
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2 (owner messages exceed quota rather than drop)", s.Len())
	}
	// A foreign message gives the policy a victim again.
	mustPut(t, s, post(bob, 1, "cargo"))
	if s.Len() != 2 || s.Has(msg.Ref{Author: bob, Seq: 1}) {
		t.Errorf("foreign message not chosen as victim: len=%d", s.Len())
	}
}

func TestTTLSweep(t *testing.T) {
	clk := clock.NewVirtual(time.Date(2017, 4, 6, 0, 0, 0, 0, time.UTC))
	s := NewMemory(alice, Options{Policy: TTL(24 * time.Hour), Clock: clk})
	old := post(bob, 1, "stale")
	old.Created = clk.Now().Add(-36 * time.Hour)
	mustPut(t, s, old)
	ownOld := post(alice, 1, "own stale")
	ownOld.Created = clk.Now().Add(-48 * time.Hour)
	mustPut(t, s, ownOld)
	fresh := post(bob, 2, "fresh")
	fresh.Created = clk.Now()
	mustPut(t, s, fresh)

	if n := s.SweepExpired(); n != 1 {
		t.Fatalf("SweepExpired = %d, want 1", n)
	}
	if s.Has(msg.Ref{Author: bob, Seq: 1}) {
		t.Error("expired foreign message survived the sweep")
	}
	if !s.Has(msg.Ref{Author: alice, Seq: 1}) {
		t.Error("owner's old message was expired")
	}
	if !s.Has(msg.Ref{Author: bob, Seq: 2}) {
		t.Error("fresh message was expired")
	}
	if st := s.Stats(); st.Expirations != 1 {
		t.Errorf("Expirations = %d, want 1", st.Expirations)
	}
}

func TestSummaryGeneration(t *testing.T) {
	s := New(alice)
	g0 := s.Generation()
	mustPut(t, s, post(bob, 2, "b2"))
	g1 := s.Generation()
	if g1 == g0 {
		t.Error("generation did not move on a summary change")
	}
	// An out-of-order older seq changes holdings but not the summary.
	mustPut(t, s, post(bob, 1, "b1"))
	if s.Generation() != g1 {
		t.Error("generation moved though the summary did not change")
	}
	// A handed-out snapshot stays immutable across later puts.
	snap := s.Summary()
	mustPut(t, s, post(bob, 3, "b3"))
	if snap[bob] != 2 {
		t.Errorf("handed-out summary mutated: %v", snap)
	}
	if got := s.Summary()[bob]; got != 3 {
		t.Errorf("fresh summary = %d, want 3", got)
	}
}

func TestSizeQuotaPolicyEvictsLargest(t *testing.T) {
	s := NewMemory(alice, Options{MaxMessages: 2, Policy: SizeQuota()})
	mustPut(t, s, post(bob, 1, "tiny"))
	mustPut(t, s, post(carol, 1, string(make([]byte, 4096))))
	mustPut(t, s, post(bob, 2, "small"))
	if s.Has(msg.Ref{Author: carol, Seq: 1}) {
		t.Error("size-quota policy kept the largest message")
	}
	if !s.Has(msg.Ref{Author: bob, Seq: 1}) || !s.Has(msg.Ref{Author: bob, Seq: 2}) {
		t.Error("size-quota policy dropped a small message")
	}
}

func TestSubscriptionPriorityPolicyProtectsFeed(t *testing.T) {
	s := NewMemory(alice, Options{MaxMessages: 2, Policy: SubscriptionPriority()})
	s.Subscribe(carol)
	mustPut(t, s, post(carol, 1, "feed"))
	mustPut(t, s, post(bob, 1, "cargo"))
	mustPut(t, s, post(carol, 2, "more feed"))
	if s.Has(msg.Ref{Author: bob, Seq: 1}) {
		t.Error("unsubscribed cargo survived over feed content")
	}
	if !s.Has(msg.Ref{Author: carol, Seq: 1}) || !s.Has(msg.Ref{Author: carol, Seq: 2}) {
		t.Error("subscribed feed content was evicted")
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{PolicyDropOldest, PolicySizeQuota, PolicySubscriptionPriority} {
		p, err := PolicyByName(name, 0)
		if err != nil || p.Name() != name {
			t.Errorf("PolicyByName(%q) = %v, %v", name, p, err)
		}
	}
	if p, err := PolicyByName(PolicyTTL, time.Hour); err != nil || p.Name() != PolicyTTL {
		t.Errorf("PolicyByName(ttl, 1h) = %v, %v", p, err)
	}
	if _, err := PolicyByName(PolicyTTL, 0); err == nil {
		t.Error("ttl policy without a lifetime accepted")
	}
	if _, err := PolicyByName("no-such-policy", 0); err == nil {
		t.Error("unknown policy accepted")
	}
	if p, _ := PolicyByName("", 0); p.Name() != PolicyDropOldest {
		t.Errorf("default policy = %s, want drop-oldest", p.Name())
	}
	if p, _ := PolicyByName("", time.Hour); p.Name() != PolicyTTL {
		t.Errorf("default policy with ttl = %s, want ttl", p.Name())
	}
	// A relay TTL composes with any named policy instead of being
	// silently dropped.
	p, err := PolicyByName(PolicySubscriptionPriority, time.Hour)
	if err != nil {
		t.Fatalf("PolicyByName(subscription-priority, 1h): %v", err)
	}
	if !p.Expires() {
		t.Error("ttl not layered over subscription-priority")
	}
	old := Entry{Created: time.Date(2017, 4, 6, 0, 0, 0, 0, time.UTC)}
	if !p.Expired(old, old.Created.Add(2*time.Hour)) {
		t.Error("composed policy did not expire an old entry")
	}
	if !p.Less(Entry{Subscribed: false}, Entry{Subscribed: true}) {
		t.Error("composed policy lost the base victim ranking")
	}
}

// TestSummaryMonotoneProperty: inserting any batch of messages never
// lowers any author's summary entry.
func TestSummaryMonotoneProperty(t *testing.T) {
	f := func(seqsRaw []uint16) bool {
		s := New(alice)
		prev := make(map[id.UserID]uint64)
		for _, raw := range seqsRaw {
			seq := uint64(raw%64) + 1
			author := bob
			if raw%2 == 0 {
				author = carol
			}
			if _, err := s.Put(post(author, seq, "m")); err != nil {
				return false
			}
			cur := s.Summary()
			for a, v := range prev {
				if cur[a] < v {
					return false
				}
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestMissingComplementProperty: for any set of held sequences, Missing
// plus held must exactly cover 1..upto.
func TestMissingComplementProperty(t *testing.T) {
	f := func(heldRaw []uint16, uptoRaw uint8) bool {
		upto := uint64(uptoRaw%40) + 1
		s := New(alice)
		held := make(map[uint64]bool)
		for _, raw := range heldRaw {
			seq := uint64(raw%40) + 1
			if !held[seq] {
				if _, err := s.Put(post(bob, seq, "m")); err != nil {
					return false
				}
				held[seq] = true
			}
		}
		missing := s.Missing(bob, upto)
		missingSet := make(map[uint64]bool, len(missing))
		for _, seq := range missing {
			if seq < 1 || seq > upto || held[seq] {
				return false
			}
			missingSet[seq] = true
		}
		for seq := uint64(1); seq <= upto; seq++ {
			if !held[seq] && !missingSet[seq] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func seqsOf(ms []*msg.Message) []uint64 {
	out := make([]uint64, len(ms))
	for i, m := range ms {
		out[i] = m.Seq
	}
	return out
}

func refsOf(ms []*msg.Message) []msg.Ref {
	out := make([]msg.Ref, len(ms))
	for i, m := range ms {
		out[i] = m.Ref()
	}
	return out
}

// TestChangesLogBounded drives one stripe's change log past its cap and
// checks that ancient bases become unanswerable (full-summary fallback)
// while recent bases still produce exact deltas.
func TestChangesLogBounded(t *testing.T) {
	s := New(id.NewUserID("owner"))
	author := id.NewUserID("busy")
	var n uint64
	for s.sum.floor.Load() == 0 {
		n++
		if _, err := s.Put(&msg.Message{
			Author: author, Seq: n, Kind: msg.KindPost, Created: time.Unix(0, 0),
		}); err != nil {
			t.Fatal(err)
		}
		if n > 3*maxStripeLog {
			t.Fatalf("log never compacted after %d changes", n)
		}
	}
	if _, ok := s.Changes(0); ok {
		t.Error("Changes(0) still answerable after log compaction")
	}
	recent := s.Generation() - 5
	delta, ok := s.Changes(recent)
	if !ok {
		t.Fatalf("Changes(%d) unanswerable", recent)
	}
	if len(delta) != 1 || delta[author] != n {
		t.Errorf("Changes(%d) = %v, want {%s: %d}", recent, delta, author, n)
	}
}

// TestSummaryNoCloneWithoutSnapshot is the mega-alloc regression guard:
// Summary hands out a private merged copy, so a Put after Summary()+drop
// must not force any copy-on-write clone — the old design cloned the
// whole dictionary on the next bump after every hand-out.
func TestSummaryNoCloneWithoutSnapshot(t *testing.T) {
	s := New(alice)
	mustPut(t, s, post(bob, 1, "b1"))
	_ = s.Summary() // dropped immediately
	mustPut(t, s, post(bob, 2, "b2"))
	mustPut(t, s, post(carol, 1, "c1"))
	if got := s.Stats().SummaryClones; got != 0 {
		t.Errorf("SummaryClones after Summary()+drop = %d, want 0", got)
	}
}

// TestStripeSnapshotClonesOnce: a handed-out stripe snapshot forces
// exactly one clone on that stripe's next change, stays immutable, and
// further changes without a new hand-out are clone-free.
func TestStripeSnapshotClonesOnce(t *testing.T) {
	s := New(alice)
	mustPut(t, s, post(bob, 1, "b1"))
	snap := s.SummaryStripe(stripeOf(bob))
	mustPut(t, s, post(bob, 2, "b2")) // first change after hand-out: clones
	mustPut(t, s, post(bob, 3, "b3")) // no snapshot outstanding: clone-free
	if got := s.Stats().SummaryClones; got != 1 {
		t.Errorf("SummaryClones = %d, want exactly 1", got)
	}
	if snap[bob] != 1 {
		t.Errorf("handed-out stripe snapshot mutated: %v", snap)
	}
	if got := s.SummaryStripe(stripeOf(bob))[bob]; got != 3 {
		t.Errorf("fresh stripe snapshot = %d, want 3", got)
	}
	// A change in a different stripe never clones bob's stripe.
	other := carol
	if stripeOf(other) == stripeOf(bob) {
		for i := 0; stripeOf(other) == stripeOf(bob); i++ {
			other = id.NewUserID(fmt.Sprintf("other-%d", i))
		}
	}
	_ = s.SummaryStripe(stripeOf(bob))
	mustPut(t, s, post(other, 1, "o1"))
	if got := s.Stats().SummaryClones; got != 1 {
		t.Errorf("cross-stripe Put forced a clone: SummaryClones = %d", got)
	}
}

// TestStripedSummaryConcurrent exercises writers against every reader of
// the striped index under the race detector.
func TestStripedSummaryConcurrent(t *testing.T) {
	s := New(alice)
	var wg sync.WaitGroup
	const writers, perWriter = 4, 200
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			author := id.NewUserID(fmt.Sprintf("stripe-writer-%d", w))
			for i := 1; i <= perWriter; i++ {
				if _, err := s.Put(post(author, uint64(i), "x")); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			base := s.Generation()
			_ = s.Summary()
			for st := 0; st < s.SummaryStripes(); st++ {
				for range s.SummaryStripe(st) {
				}
			}
			if delta, ok := s.Changes(base); ok {
				for a, seq := range delta {
					if seq == 0 {
						t.Errorf("delta advertises seq 0 for %s", a)
					}
				}
			}
		}
	}()
	wg.Wait()
	<-done
	want := map[id.UserID]uint64{}
	for w := 0; w < writers; w++ {
		want[id.NewUserID(fmt.Sprintf("stripe-writer-%d", w))] = perWriter
	}
	if got := s.Summary(); !reflect.DeepEqual(got, want) {
		t.Errorf("final Summary = %v, want %v", got, want)
	}
	if got := s.SummarySize(); got != writers {
		t.Errorf("SummarySize = %d, want %d", got, writers)
	}
}

// TestChangesDedupsAuthors checks that a delta names each author once at
// its latest sequence even when many generations touched it.
func TestChangesDedupsAuthors(t *testing.T) {
	s := New(id.NewUserID("owner"))
	a, b := id.NewUserID("a"), id.NewUserID("b")
	base := s.Generation()
	for seq := uint64(1); seq <= 50; seq++ {
		for _, author := range []id.UserID{a, b} {
			if _, err := s.Put(&msg.Message{
				Author: author, Seq: seq, Kind: msg.KindPost, Created: time.Unix(0, 0),
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	delta, ok := s.Changes(base)
	if !ok {
		t.Fatal("Changes unanswerable")
	}
	want := map[id.UserID]uint64{a: 50, b: 50}
	if !reflect.DeepEqual(delta, want) {
		t.Errorf("Changes = %v, want %v", delta, want)
	}
}
