// Eviction policies. DTN buffer management is where delivery ratio is won
// or lost under realistic human behavior, so which message a full buffer
// drops is a first-class, pluggable decision: the store ranks victims with
// a Policy exactly the way the routing manager selects schemes. Policies
// see only Entry metadata, never payloads.

package store

import (
	"fmt"
	"time"

	"sos/internal/msg"
)

// Entry is the per-message metadata a policy ranks. Owner-authored
// messages are filtered out before policies ever see a candidate.
type Entry struct {
	Ref msg.Ref
	// Created is the author's creation timestamp.
	Created time.Time
	// StoredAt is when this node inserted the message.
	StoredAt time.Time
	// Size is the message's byte accounting.
	Size int
	// Subscribed reports whether the store's owner follows the author —
	// i.e. whether this is feed content rather than pure relay cargo.
	Subscribed bool
}

// Policy decides which message a full buffer drops, and optionally bounds
// message lifetime. Implementations must be deterministic and stateless;
// the store breaks ties by insertion order.
type Policy interface {
	// Name returns the registry name (see PolicyByName).
	Name() string
	// Less reports whether a is a better eviction victim than b.
	Less(a, b Entry) bool
	// Expired reports whether e's lifetime has ended at now. Policies
	// without expiry always return false.
	Expired(e Entry, now time.Time) bool
	// Expires reports whether Expired can ever return true, letting the
	// store skip sweeps entirely for non-expiring policies.
	Expires() bool
}

// Policy registry names.
const (
	PolicyDropOldest           = "drop-oldest"
	PolicyTTL                  = "ttl"
	PolicySizeQuota            = "size-quota"
	PolicySubscriptionPriority = "subscription-priority"
)

// PolicyByName builds a policy from its registry name. A positive ttl is
// always honoured: it parameterizes the "ttl" policy, and it adds expiry
// on top of any other named policy (so a relay TTL composes with, say,
// subscription-priority victim ranking instead of being silently
// dropped). An empty name selects "ttl" when ttl > 0 and "drop-oldest"
// otherwise, which is how the routing option RelayTTL maps onto the
// storage layer.
func PolicyByName(name string, ttl time.Duration) (Policy, error) {
	switch name {
	case "":
		if ttl > 0 {
			return TTL(ttl), nil
		}
		return DropOldest(), nil
	case PolicyDropOldest:
		return withTTL(DropOldest(), ttl), nil
	case PolicyTTL:
		if ttl <= 0 {
			return nil, fmt.Errorf("store: policy %q requires a positive ttl", name)
		}
		return TTL(ttl), nil
	case PolicySizeQuota:
		return withTTL(SizeQuota(), ttl), nil
	case PolicySubscriptionPriority:
		return withTTL(SubscriptionPriority(), ttl), nil
	default:
		return nil, fmt.Errorf("store: unknown eviction policy %q", name)
	}
}

// withTTL layers lifetime expiry over another policy's victim ranking;
// a non-positive ttl returns the base policy unchanged.
func withTTL(base Policy, ttl time.Duration) Policy {
	if ttl <= 0 {
		return base
	}
	return expiringPolicy{Policy: base, lifetime: ttl}
}

type expiringPolicy struct {
	Policy
	lifetime time.Duration
}

func (p expiringPolicy) Expired(e Entry, now time.Time) bool {
	return now.Sub(e.Created) > p.lifetime
}
func (expiringPolicy) Expires() bool { return true }

// DropOldest evicts the message that has been buffered longest — plain
// FIFO, the classic DTN baseline.
func DropOldest() Policy { return dropOldest{} }

type dropOldest struct{}

func (dropOldest) Name() string                  { return PolicyDropOldest }
func (dropOldest) Less(a, b Entry) bool          { return a.StoredAt.Before(b.StoredAt) }
func (dropOldest) Expired(Entry, time.Time) bool { return false }
func (dropOldest) Expires() bool                 { return false }

// TTL bounds how long a node buffers *other users'* messages: a foreign
// message older (by creation time) than the lifetime is evicted at the
// next sweep, and under quota pressure the oldest-created message goes
// first. This is the real-eviction successor of the old serve-time
// RelayTTL filter; authors always keep their own messages, so old content
// remains deliverable directly from its source.
func TTL(lifetime time.Duration) Policy { return ttlPolicy{lifetime: lifetime} }

type ttlPolicy struct{ lifetime time.Duration }

func (ttlPolicy) Name() string         { return PolicyTTL }
func (ttlPolicy) Less(a, b Entry) bool { return a.Created.Before(b.Created) }
func (p ttlPolicy) Expired(e Entry, now time.Time) bool {
	return now.Sub(e.Created) > p.lifetime
}
func (ttlPolicy) Expires() bool { return true }

// SizeQuota evicts the largest message first, freeing the most buffer per
// drop — it biases the buffer toward many small social actions over few
// bulky payloads.
func SizeQuota() Policy { return sizeQuota{} }

type sizeQuota struct{}

func (sizeQuota) Name() string { return PolicySizeQuota }
func (sizeQuota) Less(a, b Entry) bool {
	if a.Size != b.Size {
		return a.Size > b.Size
	}
	return a.StoredAt.Before(b.StoredAt)
}
func (sizeQuota) Expired(Entry, time.Time) bool { return false }
func (sizeQuota) Expires() bool                 { return false }

// SubscriptionPriority evicts pure relay cargo — messages from authors
// the owner does not follow — before feed content, oldest first within
// each class. Under pressure a device degrades to interest-only carrying
// instead of dropping its own user's feed.
func SubscriptionPriority() Policy { return subPriority{} }

type subPriority struct{}

func (subPriority) Name() string { return PolicySubscriptionPriority }
func (subPriority) Less(a, b Entry) bool {
	if a.Subscribed != b.Subscribed {
		return !a.Subscribed
	}
	return a.StoredAt.Before(b.StoredAt)
}
func (subPriority) Expired(Entry, time.Time) bool { return false }
func (subPriority) Expires() bool                 { return false }
