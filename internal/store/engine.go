// The storage engine contract. The paper's middleware "saves the action to
// the local database on the mobile device" before dissemination (§V); on a
// real device that database is a scarce, crash-prone resource, so the store
// layer is pluggable: Engine is the behavioral contract every backend must
// satisfy, and the package ships two — the in-memory Store (simulations,
// tests, throwaway nodes) and the disk-backed Disk (daemons that must
// survive restarts). The conformance suite in storetest runs both through
// identical assertions, including kill-and-reload crash recovery.

package store

import (
	"sos/internal/clock"
	"sos/internal/id"
	"sos/internal/msg"
	"sos/internal/obs/span"
)

// Engine is a node's message database plus subscription registry. All
// implementations are safe for concurrent use. Messages handed in are
// cloned on insert and handed out as clones, so callers can never mutate
// stored state; the one exception is SummaryStripe, which returns a
// shared read-only snapshot (see its doc comment).
type Engine interface {
	// Owner returns the user this database belongs to.
	Owner() id.UserID
	// NextSeq reserves the next sequence number for owner-authored
	// messages. Reservations are not durable until the message is Put.
	NextSeq() uint64

	// Put inserts a message, returning true if it was new. Duplicate
	// (author, seq) pairs — including pairs the engine has already held
	// and evicted — are ignored, which keeps redundant epidemic
	// deliveries idempotent and prevents evicted messages from being
	// re-fetched in an endless churn loop. Put may evict other messages
	// to stay within the configured quota.
	Put(m *msg.Message) (bool, error)
	// Get returns a copy of the message with the given ref.
	Get(ref msg.Ref) (*msg.Message, bool)
	// Has reports whether the engine currently holds the message.
	Has(ref msg.Ref) bool
	// Len returns the number of held messages.
	Len() int

	// MaxSeq returns the highest sequence number *seen* for author, or 0.
	// Eviction never lowers it: it is the high-water mark the discovery
	// summary advertises, not a guarantee of possession.
	MaxSeq(author id.UserID) uint64
	// Summary returns the advertisement dictionary (author → latest seen
	// MessageNumber, paper §V-A) as a fresh map owned by the caller,
	// merged from the engine's stripes. It never arms copy-on-write, so
	// it is safe to call on any store size without taxing later Puts —
	// but it is an O(authors) merge; hot paths that can work per-stripe
	// should use SummaryStripe, and callers that only need the
	// dictionary's size must use SummarySize.
	Summary() map[id.UserID]uint64
	// SummaryStripes returns the number of buckets the summary is
	// sharded into by author-ID prefix. The stripe of an author is
	// stable for the engine's lifetime, and every author appears in
	// exactly one stripe.
	SummaryStripes() int
	// SummaryStripe returns bucket i of the summary as a shared
	// immutable snapshot — copy-on-write lands on that stripe's next
	// change only, so a hand-out costs at most one stripe clone, not a
	// whole-dictionary clone. Callers must treat the map as read-only;
	// it may be nil for an empty stripe.
	SummaryStripe(i int) map[id.UserID]uint64
	// SummarySize returns len(Summary()) without building it.
	SummarySize() int
	// Generation returns a counter that increments whenever the summary
	// changes. The ad hoc layer re-advertises only when it moves.
	Generation() uint64
	// Changes returns the summary entries that changed in generations
	// (sinceGen, Generation()] — author → latest seen MessageNumber — and
	// ok=true when the engine retains enough change history to answer
	// exactly. ok=false (sinceGen older than the bounded change log, or
	// ahead of the current generation) means the caller must fall back to
	// the full Summary. The returned map is owned by the caller. This is
	// what delta advertisements are built from: steady-state sync traffic
	// scales with what changed, not with how many authors the store has
	// ever seen.
	Changes(sinceGen uint64) (map[id.UserID]uint64, bool)

	// Missing returns the sequence numbers in [1, upto] that the engine
	// neither holds nor has deliberately evicted, in ascending order.
	Missing(author id.UserID, upto uint64) []uint64
	// MessagesFrom returns copies of held messages by author with seq >
	// after, ordered by sequence number.
	MessagesFrom(author id.UserID, after uint64) []*msg.Message
	// Select returns copies of specific held messages; absent refs are
	// skipped.
	Select(author id.UserID, seqs []uint64) []*msg.Message
	// All returns copies of every held message in deterministic order.
	All() []*msg.Message
	// Authors returns every author with at least one held message.
	Authors() []id.UserID

	// Subscribe records interest in a user's messages.
	Subscribe(user id.UserID)
	// Unsubscribe removes interest in a user's messages.
	Unsubscribe(user id.UserID)
	// IsSubscribed reports whether the node subscribes to user.
	IsSubscribed(user id.UserID) bool
	// Subscriptions returns the subscribed users in deterministic order.
	Subscriptions() []id.UserID

	// SweepExpired evicts every held message whose lifetime has ended
	// under the engine's eviction policy and returns the count. The
	// middleware sweeps before advertising and before serving, so a
	// policy with expiry (TTL) bounds what a node forwards.
	SweepExpired() int
	// OnEvict registers an additional eviction observer. Hooks fire
	// after the engine's internal lock is released, in registration
	// order, once per dropped message.
	OnEvict(fn func(Eviction))
	// Stats snapshots the engine's counters.
	Stats() Stats

	// Close flushes and releases the engine. Reads remain valid; writes
	// after Close fail on durable engines.
	Close() error
}

// EvictReason says why a message was dropped.
type EvictReason uint8

// Eviction reasons.
const (
	// EvictCapacity: the buffer exceeded its message or byte quota and
	// the eviction policy chose this message as the victim.
	EvictCapacity EvictReason = iota + 1
	// EvictExpired: the message outlived the policy's lifetime (TTL).
	EvictExpired
)

// String names the reason for logs and metrics.
func (r EvictReason) String() string {
	switch r {
	case EvictCapacity:
		return "capacity"
	case EvictExpired:
		return "expired"
	default:
		return "unknown"
	}
}

// Eviction describes one dropped message.
type Eviction struct {
	Ref    msg.Ref
	Reason EvictReason
	// Kind is the dropped message's kind. Telemetry consumers use it to
	// tell workload drops (posts) from social-graph chatter after the
	// message itself is gone.
	Kind msg.Kind
	// Size is the bytes the drop freed (payload + signature +
	// certificate + bookkeeping overhead).
	Size int
}

// Stats counts storage-engine events. Counters are since-open: a durable
// engine that replays its log on open counts the replayed inserts as Puts.
type Stats struct {
	// Puts counts accepted inserts.
	Puts uint64
	// Duplicates counts rejected re-inserts (already held or already
	// evicted).
	Duplicates uint64
	// Evictions counts capacity-quota drops.
	Evictions uint64
	// Expirations counts lifetime (TTL) drops.
	Expirations uint64
	// EvictedBytes totals the bytes freed by drops of both kinds.
	EvictedBytes uint64
	// Messages and Bytes are the current buffer occupancy.
	Messages int
	Bytes    int
	// Generation is the current summary generation.
	Generation uint64
	// SummaryClones counts copy-on-write stripe clones forced by
	// outstanding SummaryStripe snapshots. Flat-lining this at scale is
	// the point of the striped index.
	SummaryClones uint64
	// StripeLockWaits counts summary-stripe lock acquisitions that found
	// the lock already held — contention between links syncing
	// overlapping author ranges.
	StripeLockWaits uint64
}

// Options tunes an engine. The zero value is an unbounded buffer with the
// drop-oldest policy (which then never fires).
type Options struct {
	// MaxMessages bounds the buffer in messages; 0 = unbounded.
	MaxMessages int
	// MaxBytes bounds the buffer in bytes (payload + signature +
	// certificate + overhead per message); 0 = unbounded.
	MaxBytes int
	// Policy selects the eviction policy; nil = DropOldest. Messages
	// authored by the store's owner are never evicted — a device always
	// keeps its own actions, matching the field study where old posts
	// stayed deliverable single-hop from their authors.
	Policy Policy
	// Clock drives stored-at timestamps and TTL expiry; nil = wall time.
	Clock clock.Clock
	// OnEvict observes every drop (same contract as Engine.OnEvict).
	OnEvict func(Eviction)

	// NoSync, for the disk engine only, skips the fsync after each
	// appended record. Faster, but a crash can lose the tail.
	NoSync bool
	// CompactBytes, for the disk engine only, is the append-log size
	// that triggers snapshot compaction; 0 selects a 1 MiB default.
	CompactBytes int64
	// Tracer, when set, records store maintenance spans (disk
	// compaction) into the node's flight recorder. The memory engine
	// ignores it.
	Tracer *span.Tracer
}

// messageSize is the byte accounting for one stored message: the variable
// fields plus a fixed overhead for the struct and index entries.
func messageSize(m *msg.Message) int {
	const overhead = 64
	return len(m.Payload) + len(m.Sig) + len(m.CertDER) + overhead
}
