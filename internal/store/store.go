// Package store implements the on-device message database AlleyOop Social
// writes every action to before dissemination (paper §V: "saves the action
// to the local database on the mobile device"). The store indexes messages
// by (author, sequence number), tracks the node's subscriptions, and
// produces the discovery summary — the UserID → latest-MessageNumber
// dictionary that the ad hoc manager advertises in plain text (§V-A).
//
// Storage is pluggable (see Engine): this file is the in-memory engine,
// which also serves as the index layer of the disk engine. The buffer is
// bounded — capacity quotas plus an eviction Policy decide what a full
// device drops — and evicted refs leave tombstones so a dropped message is
// neither re-requested from peers nor re-admitted, preventing fetch/evict
// churn. The advertisement summary is maintained incrementally: O(1) per
// Put with a generation counter, instead of a full rebuild per beacon.
package store

import (
	"container/list"
	"fmt"
	"sort"
	"sync"
	"time"

	"sos/internal/clock"
	"sos/internal/id"
	"sos/internal/msg"
)

// Store is the in-memory storage engine: a thread-safe message database
// plus subscription registry for a single node. It satisfies Engine; the
// disk engine embeds it as its index.
type Store struct {
	mu     sync.RWMutex
	owner  id.UserID
	clk    clock.Clock
	policy Policy

	maxMessages int
	maxBytes    int

	msgs     map[msg.Ref]*entry
	byAuthor map[id.UserID]map[uint64]*entry
	// maxSeq is the high-water mark of *seen* sequence numbers per
	// author; eviction never lowers it.
	maxSeq map[id.UserID]uint64
	// dropped holds eviction tombstones: refs once held and deliberately
	// dropped, excluded from Missing and rejected on re-Put.
	dropped map[id.UserID]map[uint64]bool
	subs    map[id.UserID]bool
	// order is the insertion queue (*entry values) policies scan for
	// victims; ties break toward the front.
	order  *list.List
	ownSeq uint64

	// sum is the striped advertisement dictionary plus its per-stripe
	// bounded change logs (see stripes.go). Bumps are serialized by mu;
	// reads take only the stripe locks they touch.
	sum summaryIndex

	bytes int
	stats Stats

	hookMu sync.Mutex
	hooks  []func(Eviction)
}

var _ Engine = (*Store)(nil)

// entry is one held message plus its eviction bookkeeping.
type entry struct {
	m      *msg.Message
	size   int
	stored time.Time
	elem   *list.Element
}

// New creates an unbounded in-memory store owned by the given user.
func New(owner id.UserID) *Store {
	return NewMemory(owner, Options{})
}

// NewMemory creates an in-memory store with explicit buffer options.
func NewMemory(owner id.UserID, opts Options) *Store {
	if opts.Clock == nil {
		opts.Clock = clock.System()
	}
	if opts.Policy == nil {
		opts.Policy = DropOldest()
	}
	s := &Store{
		owner:       owner,
		clk:         opts.Clock,
		policy:      opts.Policy,
		maxMessages: opts.MaxMessages,
		maxBytes:    opts.MaxBytes,
		msgs:        make(map[msg.Ref]*entry),
		byAuthor:    make(map[id.UserID]map[uint64]*entry),
		maxSeq:      make(map[id.UserID]uint64),
		dropped:     make(map[id.UserID]map[uint64]bool),
		subs:        make(map[id.UserID]bool),
		order:       list.New(),
	}
	if opts.OnEvict != nil {
		s.hooks = append(s.hooks, opts.OnEvict)
	}
	return s
}

// Owner returns the user this store belongs to.
func (s *Store) Owner() id.UserID { return s.owner }

// NextSeq reserves and returns the next sequence number for messages
// authored by the store's owner.
func (s *Store) NextSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ownSeq++
	return s.ownSeq
}

// Put inserts a message, returning true if it was new. Duplicate
// (author, seq) pairs — held or tombstoned — are ignored, which makes
// redundant epidemic deliveries idempotent and keeps evicted messages
// from churning back in. The stored copy is a clone, so later mutation of
// m by the caller cannot corrupt the database. When the insert pushes the
// buffer over quota, the eviction policy drops victims (never the owner's
// own messages) and registered OnEvict hooks observe each drop.
func (s *Store) Put(m *msg.Message) (bool, error) {
	if err := m.Validate(); err != nil {
		return false, fmt.Errorf("store: rejecting message: %w", err)
	}
	s.mu.Lock()
	ref := m.Ref()
	if _, held := s.msgs[ref]; held || s.dropped[ref.Author][ref.Seq] {
		s.stats.Duplicates++
		s.mu.Unlock()
		return false, nil
	}
	cp := m.Clone()
	e := &entry{m: cp, size: messageSize(cp), stored: s.clk.Now()}
	s.msgs[ref] = e
	perAuthor := s.byAuthor[ref.Author]
	if perAuthor == nil {
		perAuthor = make(map[uint64]*entry)
		s.byAuthor[ref.Author] = perAuthor
	}
	perAuthor[ref.Seq] = e
	e.elem = s.order.PushBack(e)
	s.bytes += e.size
	s.stats.Puts++
	if ref.Seq > s.maxSeq[ref.Author] {
		s.maxSeq[ref.Author] = ref.Seq
		s.sum.bump(ref.Author, ref.Seq)
	}
	if ref.Author == s.owner && ref.Seq > s.ownSeq {
		s.ownSeq = ref.Seq
	}
	evs := s.enforceQuotaLocked()
	s.mu.Unlock()
	s.fire(evs)
	return true, nil
}

// Changes returns the summary entries that changed in (sinceGen, gen];
// see Engine.Changes. The per-stripe logs are consulted without taking
// the store's own lock.
func (s *Store) Changes(sinceGen uint64) (map[id.UserID]uint64, bool) {
	return s.sum.changes(sinceGen)
}

// enforceQuotaLocked drops policy-selected victims until the buffer fits
// its quota, returning the evictions for post-unlock hook delivery. The
// owner's own messages are never candidates; if only those remain, the
// buffer is allowed to exceed quota.
func (s *Store) enforceQuotaLocked() []Eviction {
	var evs []Eviction
	for s.overQuotaLocked() {
		victim := s.victimLocked()
		if victim == nil {
			break
		}
		evs = append(evs, s.removeLocked(victim, EvictCapacity))
	}
	return evs
}

func (s *Store) overQuotaLocked() bool {
	return (s.maxMessages > 0 && len(s.msgs) > s.maxMessages) ||
		(s.maxBytes > 0 && s.bytes > s.maxBytes)
}

// victimLocked picks the policy's best victim. Drop-oldest ranks by
// stored-at, which IS the insertion queue order, so the default policy
// takes the front-most foreign entry in O(1) amortized; other policies
// scan front-to-back with strict Less, which makes ties deterministic
// (the earlier-inserted candidate wins).
func (s *Store) victimLocked() *entry {
	if _, fifo := s.policy.(dropOldest); fifo {
		for el := s.order.Front(); el != nil; el = el.Next() {
			if e := el.Value.(*entry); e.m.Author != s.owner {
				return e
			}
		}
		return nil
	}
	var best *entry
	var bestMeta Entry
	for el := s.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if e.m.Author == s.owner {
			continue
		}
		meta := s.entryMetaLocked(e)
		if best == nil || s.policy.Less(meta, bestMeta) {
			best, bestMeta = e, meta
		}
	}
	return best
}

func (s *Store) entryMetaLocked(e *entry) Entry {
	return Entry{
		Ref:        e.m.Ref(),
		Created:    e.m.Created,
		StoredAt:   e.stored,
		Size:       e.size,
		Subscribed: s.subs[e.m.Author],
	}
}

// removeLocked drops a held entry, leaving a tombstone so the ref is
// neither re-requested nor re-admitted.
func (s *Store) removeLocked(e *entry, reason EvictReason) Eviction {
	ref := e.m.Ref()
	delete(s.msgs, ref)
	perAuthor := s.byAuthor[ref.Author]
	delete(perAuthor, ref.Seq)
	if len(perAuthor) == 0 {
		delete(s.byAuthor, ref.Author)
	}
	s.order.Remove(e.elem)
	s.bytes -= e.size
	s.tombstoneLocked(ref)
	switch reason {
	case EvictExpired:
		s.stats.Expirations++
	default:
		s.stats.Evictions++
	}
	s.stats.EvictedBytes += uint64(e.size)
	return Eviction{Ref: ref, Reason: reason, Kind: e.m.Kind, Size: e.size}
}

// maxTombstonesPerAuthor bounds tombstone memory on long-running,
// quota-bounded relays: a busy node evicts continuously, and unbounded
// tombstones would eventually dwarf the buffer they protect. When an
// author's set doubles the cap, the lowest (oldest-content) half is
// forgotten — those refs become re-fetchable again, which is bounded
// churn rather than unbounded memory.
const maxTombstonesPerAuthor = 4096

func (s *Store) tombstoneLocked(ref msg.Ref) {
	perAuthor := s.dropped[ref.Author]
	if perAuthor == nil {
		perAuthor = make(map[uint64]bool)
		s.dropped[ref.Author] = perAuthor
	}
	perAuthor[ref.Seq] = true
	if len(perAuthor) >= 2*maxTombstonesPerAuthor {
		seqs := make([]uint64, 0, len(perAuthor))
		for seq := range perAuthor {
			seqs = append(seqs, seq)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, seq := range seqs[:len(seqs)-maxTombstonesPerAuthor] {
			delete(perAuthor, seq)
		}
	}
}

// SweepExpired evicts every foreign message whose lifetime has ended
// under the eviction policy and returns the count. Non-expiring policies
// make this a constant-time no-op.
func (s *Store) SweepExpired() int {
	if !s.policy.Expires() {
		return 0
	}
	s.mu.Lock()
	now := s.clk.Now()
	var evs []Eviction
	for el := s.order.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*entry)
		if e.m.Author != s.owner && s.policy.Expired(s.entryMetaLocked(e), now) {
			evs = append(evs, s.removeLocked(e, EvictExpired))
		}
		el = next
	}
	s.mu.Unlock()
	s.fire(evs)
	return len(evs)
}

// OnEvict registers an eviction observer; see Engine.OnEvict.
func (s *Store) OnEvict(fn func(Eviction)) {
	s.hookMu.Lock()
	defer s.hookMu.Unlock()
	s.hooks = append(s.hooks, fn)
}

// fire delivers evictions to the registered hooks outside the store lock.
func (s *Store) fire(evs []Eviction) {
	if len(evs) == 0 {
		return
	}
	s.hookMu.Lock()
	hooks := make([]func(Eviction), len(s.hooks))
	copy(hooks, s.hooks)
	s.hookMu.Unlock()
	for _, ev := range evs {
		for _, fn := range hooks {
			fn(ev)
		}
	}
}

// Get returns a copy of the message with the given ref.
func (s *Store) Get(ref msg.Ref) (*msg.Message, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.msgs[ref]
	if !ok {
		return nil, false
	}
	return e.m.Clone(), true
}

// Has reports whether the store currently holds the given message.
func (s *Store) Has(ref msg.Ref) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.msgs[ref]
	return ok
}

// Len returns the number of held messages.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.msgs)
}

// MaxSeq returns the highest sequence number seen for author, or 0.
func (s *Store) MaxSeq(author id.UserID) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.maxSeq[author]
}

// Summary returns the plain-text advertisement dictionary: for every
// author ever seen, the latest MessageNumber — exactly the key/value
// dictionary the paper's §V-A beacons carry. The map is a fresh merge of
// the stripes, owned by the caller; handing it out never arms
// copy-on-write, so later Puts stay clone-free.
func (s *Store) Summary() map[id.UserID]uint64 {
	return s.sum.summary()
}

// SummaryStripes returns the stripe count of the sharded summary; see
// Engine.SummaryStripes.
func (s *Store) SummaryStripes() int { return SummaryStripeCount }

// SummaryStripe returns stripe i of the summary as a shared immutable
// snapshot (copy-on-write on that stripe's next change); see
// Engine.SummaryStripe.
func (s *Store) SummaryStripe(i int) map[id.UserID]uint64 {
	return s.sum.stripeSnapshot(i)
}

// SummarySize returns the summary entry count without snapshotting.
func (s *Store) SummarySize() int {
	return s.sum.sizeNow()
}

// Generation returns the summary-change counter; see Engine.Generation.
func (s *Store) Generation() uint64 {
	return s.sum.generation()
}

// Missing returns the sequence numbers in [1, upto] that the store
// neither holds nor has evicted, in ascending order. A browsing node uses
// this to build its message request after seeing an advertisement. The
// complement is computed by gap-walking the held and tombstoned sequence
// sets, so cost scales with what the node has seen, not with upto.
func (s *Store) Missing(author id.UserID, upto uint64) []uint64 {
	s.mu.RLock()
	held := s.byAuthor[author]
	tombs := s.dropped[author]
	accounted := make([]uint64, 0, len(held)+len(tombs))
	for seq := range held {
		if seq <= upto {
			accounted = append(accounted, seq)
		}
	}
	for seq := range tombs {
		if seq <= upto && held[seq] == nil {
			accounted = append(accounted, seq)
		}
	}
	s.mu.RUnlock()

	sort.Slice(accounted, func(i, j int) bool { return accounted[i] < accounted[j] })
	var missing []uint64
	next := uint64(1)
	for _, seq := range accounted {
		for ; next < seq; next++ {
			missing = append(missing, next)
		}
		next = seq + 1
	}
	for ; next <= upto; next++ {
		missing = append(missing, next)
	}
	return missing
}

// MessagesFrom returns copies of all held messages by author with
// sequence number strictly greater than after, ordered by sequence.
func (s *Store) MessagesFrom(author id.UserID, after uint64) []*msg.Message {
	s.mu.RLock()
	defer s.mu.RUnlock()
	perAuthor := s.byAuthor[author]
	if len(perAuthor) == 0 {
		return nil
	}
	seqs := make([]uint64, 0, len(perAuthor))
	for seq := range perAuthor {
		if seq > after {
			seqs = append(seqs, seq)
		}
	}
	if len(seqs) == 0 {
		return nil
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	out := make([]*msg.Message, 0, len(seqs))
	for _, seq := range seqs {
		out = append(out, perAuthor[seq].m.Clone())
	}
	return out
}

// Select returns copies of specific held messages by (author, seq); refs
// not held are skipped.
func (s *Store) Select(author id.UserID, seqs []uint64) []*msg.Message {
	s.mu.RLock()
	defer s.mu.RUnlock()
	perAuthor := s.byAuthor[author]
	out := make([]*msg.Message, 0, len(seqs))
	for _, seq := range seqs {
		if e, ok := perAuthor[seq]; ok {
			out = append(out, e.m.Clone())
		}
	}
	return out
}

// All returns copies of every held message in deterministic order
// (author display form, then sequence).
func (s *Store) All() []*msg.Message {
	s.mu.RLock()
	out := make([]*msg.Message, 0, len(s.msgs))
	for _, e := range s.msgs {
		out = append(out, e.m.Clone())
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Author != out[j].Author {
			return out[i].Author.String() < out[j].Author.String()
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Authors returns every author with at least one held message.
func (s *Store) Authors() []id.UserID {
	s.mu.RLock()
	out := make([]id.UserID, 0, len(s.byAuthor))
	for author := range s.byAuthor {
		out = append(out, author)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Subscribe records interest in a user's messages. Interest-based routing
// only requests and carries messages whose author the node subscribes to,
// and the subscription-priority eviction policy protects their messages.
func (s *Store) Subscribe(user id.UserID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.subs[user] = true
}

// Unsubscribe removes interest in a user's messages.
func (s *Store) Unsubscribe(user id.UserID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.subs, user)
}

// IsSubscribed reports whether the node subscribes to user.
func (s *Store) IsSubscribed(user id.UserID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.subs[user]
}

// Subscriptions returns the subscribed users in deterministic order.
func (s *Store) Subscriptions() []id.UserID {
	s.mu.RLock()
	out := make([]id.UserID, 0, len(s.subs))
	for u := range s.subs {
		out = append(out, u)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.stats
	st.Messages = len(s.msgs)
	st.Bytes = s.bytes
	st.Generation = s.sum.generation()
	st.SummaryClones = s.sum.clones.Load()
	st.StripeLockWaits = s.sum.lockWaits.Load()
	return st
}

// Close releases the store. The in-memory engine has nothing to flush.
func (s *Store) Close() error { return nil }

// --- internal surface for the disk engine ---

// setQuota swaps the capacity bounds and enforces them, used by the
// disk engine to disable quotas during log replay (so replayed history
// never re-evicts) and restore them afterwards.
func (s *Store) setQuota(maxMessages, maxBytes int) []Eviction {
	s.mu.Lock()
	s.maxMessages, s.maxBytes = maxMessages, maxBytes
	evs := s.enforceQuotaLocked()
	s.mu.Unlock()
	return evs
}

// applyEvict replays a logged eviction: remove the ref if held (without
// firing hooks or counting it as a fresh drop) and tombstone it.
func (s *Store) applyEvict(ref msg.Ref) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.msgs[ref]; ok {
		delete(s.msgs, ref)
		perAuthor := s.byAuthor[ref.Author]
		delete(perAuthor, ref.Seq)
		if len(perAuthor) == 0 {
			delete(s.byAuthor, ref.Author)
		}
		s.order.Remove(e.elem)
		s.bytes -= e.size
	}
	s.tombstoneLocked(ref)
}

// snapshotState captures a consistent snapshot of everything a durable
// engine must persist. Message pointers are shared, which is safe: stored
// messages are immutable.
type snapshotState struct {
	msgs   []*msg.Message
	subs   []id.UserID
	tombs  map[id.UserID][]uint64
	ownSeq uint64
}

func (s *Store) snapshot() snapshotState {
	s.mu.RLock()
	st := snapshotState{
		msgs:   make([]*msg.Message, 0, len(s.msgs)),
		subs:   make([]id.UserID, 0, len(s.subs)),
		tombs:  make(map[id.UserID][]uint64, len(s.dropped)),
		ownSeq: s.ownSeq,
	}
	for _, e := range s.msgs {
		st.msgs = append(st.msgs, e.m)
	}
	for u := range s.subs {
		st.subs = append(st.subs, u)
	}
	for author, seqs := range s.dropped {
		out := make([]uint64, 0, len(seqs))
		for seq := range seqs {
			out = append(out, seq)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		st.tombs[author] = out
	}
	s.mu.RUnlock()

	sort.Slice(st.msgs, func(i, j int) bool {
		if st.msgs[i].Author != st.msgs[j].Author {
			return st.msgs[i].Author.String() < st.msgs[j].Author.String()
		}
		return st.msgs[i].Seq < st.msgs[j].Seq
	})
	sort.Slice(st.subs, func(i, j int) bool { return st.subs[i].String() < st.subs[j].String() })
	return st
}

// bumpOwnSeq raises the owner sequence floor during snapshot restore.
func (s *Store) bumpOwnSeq(seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq > s.ownSeq {
		s.ownSeq = seq
	}
}
