// Package store implements the on-device message database AlleyOop Social
// writes every action to before dissemination (paper §V: "saves the action
// to the local database on the mobile device"). The store indexes messages
// by (author, sequence number), tracks the node's subscriptions, and
// produces the discovery summary — the UserID → latest-MessageNumber
// dictionary that the ad hoc manager advertises in plain text (§V-A).
package store

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"sos/internal/id"
	"sos/internal/msg"
)

// Errors reported by the store.
var (
	ErrCorrupt = errors.New("store: corrupt snapshot")
)

// Store is a thread-safe message database plus subscription registry for a
// single node.
type Store struct {
	mu       sync.RWMutex
	owner    id.UserID
	msgs     map[msg.Ref]*msg.Message
	byAuthor map[id.UserID]map[uint64]*msg.Message
	maxSeq   map[id.UserID]uint64
	subs     map[id.UserID]bool
	ownSeq   uint64
}

// New creates an empty store owned by the given user.
func New(owner id.UserID) *Store {
	return &Store{
		owner:    owner,
		msgs:     make(map[msg.Ref]*msg.Message),
		byAuthor: make(map[id.UserID]map[uint64]*msg.Message),
		maxSeq:   make(map[id.UserID]uint64),
		subs:     make(map[id.UserID]bool),
	}
}

// Owner returns the user this store belongs to.
func (s *Store) Owner() id.UserID { return s.owner }

// NextSeq reserves and returns the next sequence number for messages
// authored by the store's owner.
func (s *Store) NextSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ownSeq++
	return s.ownSeq
}

// Put inserts a message, returning true if it was new. Duplicate
// (author, seq) pairs are ignored, which makes redundant epidemic
// deliveries idempotent. The stored copy is a clone, so later mutation of
// m by the caller cannot corrupt the database.
func (s *Store) Put(m *msg.Message) (bool, error) {
	if err := m.Validate(); err != nil {
		return false, fmt.Errorf("store: rejecting message: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ref := m.Ref()
	if _, dup := s.msgs[ref]; dup {
		return false, nil
	}
	cp := m.Clone()
	s.msgs[ref] = cp
	perAuthor := s.byAuthor[ref.Author]
	if perAuthor == nil {
		perAuthor = make(map[uint64]*msg.Message)
		s.byAuthor[ref.Author] = perAuthor
	}
	perAuthor[ref.Seq] = cp
	if ref.Seq > s.maxSeq[ref.Author] {
		s.maxSeq[ref.Author] = ref.Seq
	}
	if ref.Author == s.owner && ref.Seq > s.ownSeq {
		s.ownSeq = ref.Seq
	}
	return true, nil
}

// Get returns a copy of the message with the given ref.
func (s *Store) Get(ref msg.Ref) (*msg.Message, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.msgs[ref]
	if !ok {
		return nil, false
	}
	return m.Clone(), true
}

// Has reports whether the store holds the given message.
func (s *Store) Has(ref msg.Ref) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.msgs[ref]
	return ok
}

// Len returns the number of stored messages.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.msgs)
}

// MaxSeq returns the highest sequence number held for author, or 0.
func (s *Store) MaxSeq(author id.UserID) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.maxSeq[author]
}

// CreatedAt returns the creation timestamp of a held message, if present.
// Routing schemes use it for age-based buffer policies.
func (s *Store) CreatedAt(author id.UserID, seq uint64) (time.Time, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.msgs[msg.Ref{Author: author, Seq: seq}]
	if !ok {
		return time.Time{}, false
	}
	return m.Created, true
}

// Summary builds the plain-text advertisement dictionary: for every author
// with at least one stored message, the latest MessageNumber held. This is
// exactly the key/value dictionary the paper's §V-A beacons carry.
func (s *Store) Summary() map[id.UserID]uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[id.UserID]uint64, len(s.maxSeq))
	for author, seq := range s.maxSeq {
		out[author] = seq
	}
	return out
}

// Missing returns the sequence numbers in [1, upto] that the store does
// not hold for author, in ascending order. A browsing node uses this to
// build its message request after seeing an advertisement.
func (s *Store) Missing(author id.UserID, upto uint64) []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	perAuthor := s.byAuthor[author]
	var missing []uint64
	for seq := uint64(1); seq <= upto; seq++ {
		if _, ok := perAuthor[seq]; !ok {
			missing = append(missing, seq)
		}
	}
	return missing
}

// MessagesFrom returns copies of all stored messages by author with
// sequence number strictly greater than after, ordered by sequence.
func (s *Store) MessagesFrom(author id.UserID, after uint64) []*msg.Message {
	s.mu.RLock()
	defer s.mu.RUnlock()
	perAuthor := s.byAuthor[author]
	if len(perAuthor) == 0 {
		return nil
	}
	seqs := make([]uint64, 0, len(perAuthor))
	for seq := range perAuthor {
		if seq > after {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	out := make([]*msg.Message, 0, len(seqs))
	for _, seq := range seqs {
		out = append(out, perAuthor[seq].Clone())
	}
	return out
}

// Select returns copies of specific messages by (author, seq); refs not
// held are skipped.
func (s *Store) Select(author id.UserID, seqs []uint64) []*msg.Message {
	s.mu.RLock()
	defer s.mu.RUnlock()
	perAuthor := s.byAuthor[author]
	out := make([]*msg.Message, 0, len(seqs))
	for _, seq := range seqs {
		if m, ok := perAuthor[seq]; ok {
			out = append(out, m.Clone())
		}
	}
	return out
}

// All returns copies of every stored message in deterministic order
// (author display form, then sequence).
func (s *Store) All() []*msg.Message {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*msg.Message, 0, len(s.msgs))
	for _, m := range s.msgs {
		out = append(out, m.Clone())
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Author != out[j].Author {
			return out[i].Author.String() < out[j].Author.String()
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Authors returns every author with at least one stored message.
func (s *Store) Authors() []id.UserID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]id.UserID, 0, len(s.byAuthor))
	for author := range s.byAuthor {
		out = append(out, author)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Subscribe records interest in a user's messages. Interest-based routing
// only requests and carries messages whose author the node subscribes to.
func (s *Store) Subscribe(user id.UserID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.subs[user] = true
}

// Unsubscribe removes interest in a user's messages.
func (s *Store) Unsubscribe(user id.UserID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.subs, user)
}

// IsSubscribed reports whether the node subscribes to user.
func (s *Store) IsSubscribed(user id.UserID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.subs[user]
}

// Subscriptions returns the subscribed users in deterministic order.
func (s *Store) Subscriptions() []id.UserID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]id.UserID, 0, len(s.subs))
	for u := range s.subs {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Save writes a snapshot of all messages and subscriptions to w. The
// format is a count-prefixed sequence of encoded messages followed by the
// subscription list.
func (s *Store) Save(w io.Writer) error {
	all := s.All()
	subs := s.Subscriptions()

	if err := writeUvarint(w, uint64(len(all))); err != nil {
		return err
	}
	for _, m := range all {
		buf, err := m.Encode()
		if err != nil {
			return fmt.Errorf("store: encoding %s: %w", m.Ref(), err)
		}
		if err := writeUvarint(w, uint64(len(buf))); err != nil {
			return err
		}
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("store: writing snapshot: %w", err)
		}
	}
	if err := writeUvarint(w, uint64(len(subs))); err != nil {
		return err
	}
	for _, u := range subs {
		if _, err := w.Write(u[:]); err != nil {
			return fmt.Errorf("store: writing snapshot: %w", err)
		}
	}
	return nil
}

// Load restores a snapshot produced by Save into an empty store.
func (s *Store) Load(r io.Reader) error {
	n, err := readUvarint(r)
	if err != nil {
		return fmt.Errorf("%w: message count: %v", ErrCorrupt, err)
	}
	for i := uint64(0); i < n; i++ {
		size, err := readUvarint(r)
		if err != nil {
			return fmt.Errorf("%w: message size: %v", ErrCorrupt, err)
		}
		if size > msg.MaxPayload*2 {
			return fmt.Errorf("%w: message size %d", ErrCorrupt, size)
		}
		buf := make([]byte, size)
		if _, err := io.ReadFull(r, buf); err != nil {
			return fmt.Errorf("%w: message body: %v", ErrCorrupt, err)
		}
		m, err := msg.Decode(buf)
		if err != nil {
			return fmt.Errorf("%w: decoding message: %v", ErrCorrupt, err)
		}
		if _, err := s.Put(m); err != nil {
			return fmt.Errorf("%w: inserting message: %v", ErrCorrupt, err)
		}
	}
	subCount, err := readUvarint(r)
	if err != nil {
		return fmt.Errorf("%w: subscription count: %v", ErrCorrupt, err)
	}
	for i := uint64(0); i < subCount; i++ {
		var u id.UserID
		if _, err := io.ReadFull(r, u[:]); err != nil {
			return fmt.Errorf("%w: subscription entry: %v", ErrCorrupt, err)
		}
		s.Subscribe(u)
	}
	return nil
}

// writeUvarint writes a varint-encoded unsigned integer.
func writeUvarint(w io.Writer, v uint64) error {
	var buf [10]byte
	n := putUvarint(buf[:], v)
	if _, err := w.Write(buf[:n]); err != nil {
		return fmt.Errorf("store: writing varint: %w", err)
	}
	return nil
}

// readUvarint reads a varint-encoded unsigned integer byte by byte.
func readUvarint(r io.Reader) (uint64, error) {
	var (
		x     uint64
		shift uint
		b     [1]byte
	)
	for i := 0; i < 10; i++ {
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		if b[0] < 0x80 {
			return x | uint64(b[0])<<shift, nil
		}
		x |= uint64(b[0]&0x7f) << shift
		shift += 7
	}
	return 0, errors.New("varint too long")
}

// putUvarint encodes v into buf and returns the byte count.
func putUvarint(buf []byte, v uint64) int {
	i := 0
	for v >= 0x80 {
		buf[i] = byte(v) | 0x80
		v >>= 7
		i++
	}
	buf[i] = byte(v)
	return i + 1
}
