package store_test

import (
	"testing"

	"sos/internal/id"
	"sos/internal/store"
	"sos/internal/store/storetest"
)

var confOwner = id.NewUserID("conformance-owner")

// memWorld adapts the in-memory engine to the conformance suite: every
// Open is a fresh, empty store.
type memWorld struct{}

func (memWorld) Open(t *testing.T, opts store.Options) store.Engine {
	return store.NewMemory(confOwner, opts)
}
func (memWorld) Persistent() bool { return false }

// diskWorld adapts the disk engine: every Open reopens the same
// directory, modelling a process restart.
type diskWorld struct{ dir string }

func (w *diskWorld) Open(t *testing.T, opts store.Options) store.Engine {
	e, err := store.OpenDisk(w.dir, confOwner, opts)
	if err != nil {
		t.Fatalf("OpenDisk(%s): %v", w.dir, err)
	}
	return e
}
func (*diskWorld) Persistent() bool { return true }

func TestMemoryEngineConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) storetest.World { return memWorld{} })
}

func TestDiskEngineConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) storetest.World {
		return &diskWorld{dir: t.TempDir()}
	})
}
