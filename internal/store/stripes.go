// The striped summary index. A metro-scale store sees hundreds of
// thousands of authors, and the advertisement summary used to live in one
// map behind one mutex: every copy-on-write clone was a multi-MB
// allocation, and every reader serialized against every writer. The index
// here shards the dictionary and its change log by author-ID prefix —
// UserIDs are SHA-256-derived, so the first byte is uniform — into
// fixed-count lock-striped buckets. A snapshot hand-out arms copy-on-write
// on one stripe only, concurrent links syncing disjoint author ranges take
// disjoint locks, and the generation counter is published atomically after
// the owning stripe's record lands, so a reader that observes generation N
// is guaranteed to find record N in the logs.

package store

import (
	"sync"
	"sync/atomic"

	"sos/internal/id"
)

// SummaryStripeCount is the number of lock-striped summary buckets. An
// author's stripe is its UserID's first byte masked to this count, so the
// count must stay a power of two.
const SummaryStripeCount = 32

// maxStripeLog bounds each stripe's change log: when a log doubles the
// cap, the oldest half is forgotten and the index floor rises, making
// deltas from generations older than the remainder unanswerable
// (full-summary fallback). 1024 records per stripe keeps the worst-case
// delta (every stripe at its doubled high-water mark) well under the wire
// codec's MaxSummaryEntries.
const maxStripeLog = 1024

// stripeChange is one summary update in a stripe's bounded change log.
// Unlike the old single-log design, records carry their generation
// explicitly because a stripe only sees the subset of generations that
// touched it.
type stripeChange struct {
	gen    uint64
	author id.UserID
	seq    uint64
}

// summaryStripe is one lock-striped bucket of the advertisement
// dictionary: its author → latest-seq entries, the copy-on-write flag for
// handed-out snapshots, and the bucket's slice of the change log.
type summaryStripe struct {
	mu      sync.Mutex
	entries map[id.UserID]uint64
	out     bool
	log     []stripeChange
}

// summaryIndex is the sharded advertisement dictionary. Writers (bump) are
// serialized by the owning Store's mutex; readers take only the stripe
// locks they touch. gen and floor are atomics so Generation and the
// answerability check never contend with stripe traffic.
type summaryIndex struct {
	stripes [SummaryStripeCount]summaryStripe
	// gen is published *after* the record for that generation is appended
	// under its stripe lock, so gen=N implies record N is visible.
	gen atomic.Uint64
	// floor is the oldest generation the logs can still answer exactly;
	// it only rises (CAS-max) as stripe logs trim.
	floor atomic.Uint64
	// size is the total entry count across stripes.
	size atomic.Int64
	// clones counts copy-on-write stripe clones; lockWaits counts stripe
	// lock acquisitions that found the lock held.
	clones    atomic.Uint64
	lockWaits atomic.Uint64
}

// stripeOf maps an author to its bucket by UserID prefix.
func stripeOf(author id.UserID) int {
	return int(author[0]) & (SummaryStripeCount - 1)
}

// lock takes a stripe's mutex, counting contended acquisitions.
func (x *summaryIndex) lock(st *summaryStripe) {
	if !st.mu.TryLock() {
		x.lockWaits.Add(1)
		st.mu.Lock()
	}
}

// bump applies one incremental summary update. Callers must serialize
// bumps (the Store's write lock does); concurrent readers are safe. The
// generation is published only after the record is in the stripe log.
func (x *summaryIndex) bump(author id.UserID, seq uint64) {
	newGen := x.gen.Load() + 1
	st := &x.stripes[stripeOf(author)]
	x.lock(st)
	if st.out {
		// A snapshot of this stripe is outstanding: clone before writing
		// so the hand-out stays immutable. Cloning one stripe, not the
		// whole dictionary, is the point of the sharding.
		cp := make(map[id.UserID]uint64, len(st.entries)+1)
		for a, v := range st.entries {
			cp[a] = v
		}
		st.entries = cp
		st.out = false
		x.clones.Add(1)
	}
	if st.entries == nil {
		st.entries = make(map[id.UserID]uint64)
	}
	if _, known := st.entries[author]; !known {
		x.size.Add(1)
	}
	st.entries[author] = seq
	st.log = append(st.log, stripeChange{gen: newGen, author: author, seq: seq})
	if len(st.log) >= 2*maxStripeLog {
		// Copy the tail into a fresh slice so the forgotten half's
		// backing memory is actually released, then raise the floor past
		// the newest forgotten record.
		forgotten := st.log[len(st.log)-maxStripeLog-1].gen
		tail := make([]stripeChange, maxStripeLog)
		copy(tail, st.log[len(st.log)-maxStripeLog:])
		st.log = tail
		x.raiseFloor(forgotten)
	}
	st.mu.Unlock()
	x.gen.Store(newGen)
}

// raiseFloor lifts the answerability floor to at least gen (CAS-max).
func (x *summaryIndex) raiseFloor(gen uint64) {
	for {
		cur := x.floor.Load()
		if cur >= gen || x.floor.CompareAndSwap(cur, gen) {
			return
		}
	}
}

// changes returns the summary entries that changed in (sinceGen, gen];
// see Engine.Changes. Each stripe's log is walked newest-first so the
// first record seen per author is its latest sequence.
func (x *summaryIndex) changes(sinceGen uint64) (map[id.UserID]uint64, bool) {
	if sinceGen > x.gen.Load() || sinceGen < x.floor.Load() {
		return nil, false
	}
	out := make(map[id.UserID]uint64, 64)
	for i := range x.stripes {
		st := &x.stripes[i]
		x.lock(st)
		for j := len(st.log) - 1; j >= 0 && st.log[j].gen > sinceGen; j-- {
			rec := st.log[j]
			if _, seen := out[rec.author]; !seen {
				out[rec.author] = rec.seq
			}
		}
		st.mu.Unlock()
	}
	// A concurrent trim may have forgotten records the walk needed; the
	// floor rises before trimmed records vanish, so re-checking it after
	// the walk turns that race into an honest "unanswerable".
	if x.floor.Load() > sinceGen {
		return nil, false
	}
	return out, true
}

// summary merges every stripe into a fresh map owned by the caller. It
// never arms copy-on-write: the caller gets a private copy, and later
// bumps proceed clone-free.
func (x *summaryIndex) summary() map[id.UserID]uint64 {
	out := make(map[id.UserID]uint64, x.size.Load())
	for i := range x.stripes {
		st := &x.stripes[i]
		x.lock(st)
		for a, v := range st.entries {
			out[a] = v
		}
		st.mu.Unlock()
	}
	return out
}

// stripeSnapshot hands out stripe i's entry map as a shared immutable
// snapshot, arming copy-on-write on that stripe only. Callers must treat
// the map as read-only; it may be nil for an empty stripe.
func (x *summaryIndex) stripeSnapshot(i int) map[id.UserID]uint64 {
	st := &x.stripes[i]
	x.lock(st)
	m := st.entries
	if m != nil {
		st.out = true
	}
	st.mu.Unlock()
	return m
}

// generation returns the published summary-change counter.
func (x *summaryIndex) generation() uint64 { return x.gen.Load() }

// sizeNow returns the total entry count across stripes.
func (x *summaryIndex) sizeNow() int { return int(x.size.Load()) }
