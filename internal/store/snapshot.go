// Snapshot codec. A snapshot is the disk engine's compacted base state:
// every held message, the subscription list, the eviction tombstones, and
// the owner's sequence floor. It replaces the seed's ad-hoc Save/Load
// streams; all integers are canonical encoding/binary uvarints.

package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"sos/internal/id"
	"sos/internal/msg"
)

// Errors reported by the snapshot and record codecs.
var (
	ErrCorrupt = errors.New("store: corrupt snapshot")
)

// snapshotMagic identifies a snapshot stream and versions its layout.
var snapshotMagic = []byte{'S', 'O', 'S', 2}

// maxEncodedMessage bounds one encoded message inside snapshots and log
// records; anything larger is corruption, not data.
const maxEncodedMessage = msg.MaxPayload * 2

// writeSnapshot emits the snapshot stream.
func writeSnapshot(w io.Writer, st snapshotState) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic); err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	writeUvarint(bw, uint64(len(st.msgs)))
	for _, m := range st.msgs {
		buf, err := m.Encode()
		if err != nil {
			return fmt.Errorf("store: encoding %s: %w", m.Ref(), err)
		}
		writeUvarint(bw, uint64(len(buf)))
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("store: writing snapshot: %w", err)
		}
	}
	writeUvarint(bw, uint64(len(st.subs)))
	for _, u := range st.subs {
		if _, err := bw.Write(u[:]); err != nil {
			return fmt.Errorf("store: writing snapshot: %w", err)
		}
	}
	writeUvarint(bw, uint64(len(st.tombs)))
	for _, author := range sortedTombAuthors(st.tombs) {
		if _, err := bw.Write(author[:]); err != nil {
			return fmt.Errorf("store: writing snapshot: %w", err)
		}
		seqs := st.tombs[author]
		writeUvarint(bw, uint64(len(seqs)))
		for _, seq := range seqs {
			writeUvarint(bw, seq)
		}
	}
	writeUvarint(bw, st.ownSeq)
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	return nil
}

// readSnapshot restores a snapshot stream into the store (which must be
// open with quotas disabled, so the restore cannot trigger evictions).
func readSnapshot(r io.Reader, s *Store) error {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("%w: magic: %v", ErrCorrupt, err)
	}
	for i, b := range snapshotMagic {
		if magic[i] != b {
			return fmt.Errorf("%w: bad magic % x", ErrCorrupt, magic)
		}
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("%w: message count: %v", ErrCorrupt, err)
	}
	for i := uint64(0); i < n; i++ {
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("%w: message size: %v", ErrCorrupt, err)
		}
		if size > maxEncodedMessage {
			return fmt.Errorf("%w: message size %d", ErrCorrupt, size)
		}
		buf := make([]byte, size)
		if _, err := io.ReadFull(br, buf); err != nil {
			return fmt.Errorf("%w: message body: %v", ErrCorrupt, err)
		}
		m, err := msg.Decode(buf)
		if err != nil {
			return fmt.Errorf("%w: decoding message: %v", ErrCorrupt, err)
		}
		if _, err := s.Put(m); err != nil {
			return fmt.Errorf("%w: inserting message: %v", ErrCorrupt, err)
		}
	}
	subCount, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("%w: subscription count: %v", ErrCorrupt, err)
	}
	for i := uint64(0); i < subCount; i++ {
		var u id.UserID
		if _, err := io.ReadFull(br, u[:]); err != nil {
			return fmt.Errorf("%w: subscription entry: %v", ErrCorrupt, err)
		}
		s.Subscribe(u)
	}
	tombAuthors, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("%w: tombstone count: %v", ErrCorrupt, err)
	}
	for i := uint64(0); i < tombAuthors; i++ {
		var author id.UserID
		if _, err := io.ReadFull(br, author[:]); err != nil {
			return fmt.Errorf("%w: tombstone author: %v", ErrCorrupt, err)
		}
		seqCount, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("%w: tombstone seq count: %v", ErrCorrupt, err)
		}
		for j := uint64(0); j < seqCount; j++ {
			seq, err := binary.ReadUvarint(br)
			if err != nil {
				return fmt.Errorf("%w: tombstone seq: %v", ErrCorrupt, err)
			}
			s.applyEvict(msg.Ref{Author: author, Seq: seq})
		}
	}
	ownSeq, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("%w: owner sequence: %v", ErrCorrupt, err)
	}
	s.bumpOwnSeq(ownSeq)
	return nil
}

// writeUvarint appends a canonical uvarint to a buffered writer. Write
// errors surface at Flush, which every caller checks.
func writeUvarint(bw *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, _ = bw.Write(buf[:n])
}

func sortedTombAuthors(tombs map[id.UserID][]uint64) []id.UserID {
	out := make([]id.UserID, 0, len(tombs))
	for author := range tombs {
		out = append(out, author)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}
