// The buffer-pressure scenario: the constrained-device workload family
// the in-vivo study could not explore. The field deployment ran on
// phones with effectively unbounded storage for a 259-post week; here we
// shrink every node's buffer until the eviction policy decides delivery
// outcomes, which is exactly where DTN routing schemes diverge (epidemic
// floods every buffer it meets; interest-based carries only subscribed
// cargo and so survives small quotas far better).
//
// Topology: two stationary clusters out of radio range of each other and
// a ferry that shuttles between them. Every message must cross via the
// ferry's bounded buffer, so its eviction policy is on the critical path
// of every delivery.

package sim

import (
	"fmt"
	"time"

	"sos/internal/id"
	"sos/internal/metrics"
	"sos/internal/mobility"
)

// BufferPressureConfig parameterizes the constrained-buffer scenario.
// Zero values select the defaults noted on each field.
type BufferPressureConfig struct {
	// Seed fixes all randomness (workload spread, identities).
	Seed int64
	// ClusterSize is the node count per cluster (default 3).
	ClusterSize int
	// Posts is the number of posts authored in cluster A (default 60).
	Posts int
	// Quota bounds every node's buffer in messages (default 12;
	// negative = unbounded, the control arm).
	Quota int
	// Policy names the eviction policy (default drop-oldest).
	Policy string
	// Scheme selects routing for every node (default epidemic).
	Scheme string
	// Hours is the scenario length (default 6).
	Hours int
	// PayloadBytes sizes each post (default 64).
	PayloadBytes int
}

// BufferPressure is a fully-built pressure scenario.
type BufferPressure struct {
	Config        Config
	Subscriptions []metrics.Subscription
}

// NewBufferPressure builds the scenario: cluster A authors posts, the
// ferry shuttles, cluster B subscribes to every A-author. The ferry
// subscribes to half the authors, so interest routing still carries a
// defined portion of the workload across the partition.
func NewBufferPressure(cfg BufferPressureConfig) (*BufferPressure, error) {
	if cfg.ClusterSize <= 0 {
		cfg.ClusterSize = 3
	}
	if cfg.Posts <= 0 {
		cfg.Posts = 60
	}
	if cfg.Quota == 0 {
		cfg.Quota = 12
	}
	if cfg.Quota < 0 {
		cfg.Quota = 0 // unbounded control arm
	}
	if cfg.Scheme == "" {
		cfg.Scheme = "epidemic"
	}
	if cfg.Hours <= 0 {
		cfg.Hours = 6
	}
	if cfg.PayloadBytes <= 0 {
		cfg.PayloadBytes = 64
	}

	start := time.Date(2017, 4, 3, 8, 0, 0, 0, time.UTC)
	const gap = 2000.0 // meters between clusters, far beyond radio range

	var nodes []NodeSpec
	aHandles := make([]string, cfg.ClusterSize)
	bHandles := make([]string, cfg.ClusterSize)
	for i := 0; i < cfg.ClusterSize; i++ {
		aHandles[i] = fmt.Sprintf("a%02d", i+1)
		bHandles[i] = fmt.Sprintf("b%02d", i+1)
		nodes = append(nodes, NodeSpec{
			Handle:   aHandles[i],
			Mobility: mobility.Stationary(mobility.Point{X: float64(i) * 5, Y: 0}),
		})
	}
	// Every B-node follows every A-author: full demand across the gap.
	for i := 0; i < cfg.ClusterSize; i++ {
		nodes = append(nodes, NodeSpec{
			Handle:   bHandles[i],
			Mobility: mobility.Stationary(mobility.Point{X: gap + float64(i)*5, Y: 0}),
			Follows:  aHandles,
		})
	}
	// The ferry oscillates between the clusters every 30 minutes and
	// follows half the authors, so interest routing carries that half.
	var waypoints []mobility.Waypoint
	for at, side := start, 0; !at.After(start.Add(time.Duration(cfg.Hours) * time.Hour)); at = at.Add(30 * time.Minute) {
		x := 0.0
		if side%2 == 1 {
			x = gap
		}
		waypoints = append(waypoints, mobility.Waypoint{At: at, Pos: mobility.Point{X: x, Y: 0}})
		side++
	}
	ferryTrace, err := mobility.NewTrace(waypoints)
	if err != nil {
		return nil, fmt.Errorf("sim: ferry trace: %w", err)
	}
	nodes = append(nodes, NodeSpec{
		Handle:   "ferry",
		Mobility: ferryTrace,
		Follows:  aHandles[:(cfg.ClusterSize+1)/2],
	})

	// Workload: posts spread evenly over the first two thirds of the
	// run, round-robin over the A-authors, so the tail still has ferry
	// crossings left to deliver.
	window := time.Duration(cfg.Hours) * time.Hour * 2 / 3
	payload := make([]byte, cfg.PayloadBytes)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}
	var workload []Event
	for p := 0; p < cfg.Posts; p++ {
		at := start.Add(time.Duration(int64(window) * int64(p) / int64(cfg.Posts)))
		workload = append(workload, Event{
			At:      at,
			Handle:  aHandles[p%cfg.ClusterSize],
			Action:  ActionPost,
			Payload: payload,
		})
	}

	var subs []metrics.Subscription
	for _, b := range bHandles {
		for _, a := range aHandles {
			subs = append(subs, metrics.Subscription{
				Follower: id.NewUserID(b),
				Followee: id.NewUserID(a),
			})
		}
	}

	return &BufferPressure{
		Config: Config{
			Start:       start,
			Duration:    time.Duration(cfg.Hours) * time.Hour,
			Tick:        time.Minute,
			Range:       50,
			Scheme:      cfg.Scheme,
			Seed:        cfg.Seed,
			StoreQuota:  cfg.Quota,
			StorePolicy: cfg.Policy,
			Nodes:       nodes,
			Workload:    workload,
		},
		Subscriptions: subs,
	}, nil
}
