// Contact-trace parsing: the trace-driven scenario source. Trace-driven
// evaluation is the standard way social forwarding schemes are validated
// (Haggle, CRAWDAD encounter dumps): instead of synthesizing mobility and
// detecting proximity, the recorded link up/down events are replayed
// verbatim into the medium. The format here is deliberately minimal —
// one transition per line, (node, peer, up|down, timestamp) — so real
// encounter dumps convert with a one-line awk script. docs/SCENARIOS.md
// documents it with examples; examples/trace-replay/ holds a runnable one.
package sim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ContactEvent is one recorded link transition between two named nodes.
type ContactEvent struct {
	At time.Time
	A  string
	B  string
	Up bool
}

// jsonContactEvent is the JSONL wire form of one trace line.
type jsonContactEvent struct {
	Node string          `json:"node"`
	Peer string          `json:"peer"`
	Op   string          `json:"op"`
	At   json.RawMessage `json:"at"`
}

// LoadContactTrace reads a contact-trace file (CSV or JSONL, detected
// per line) and returns its events in chronological order plus the
// sorted set of node handles it names. Relative timestamps (plain
// seconds) are resolved against base.
func LoadContactTrace(path string, base time.Time) ([]ContactEvent, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("sim: opening contact trace: %w", err)
	}
	defer f.Close()
	events, handles, err := ParseContactTrace(f, base)
	if err != nil {
		return nil, nil, fmt.Errorf("sim: %s: %w", path, err)
	}
	return events, handles, nil
}

// ParseContactTrace parses a contact trace from r. Each non-empty,
// non-comment line is one link transition:
//
//	CSV:   node,peer,op,at      e.g.  n1,n2,up,120
//	JSONL: {"node":"n1","peer":"n2","op":"up","at":120}
//
// op is "up" or "down". at is either an absolute RFC 3339 timestamp
// ("2017-04-03T09:00:00Z") or a number of seconds from the scenario
// start (resolved against base; fractional seconds allowed). Lines
// beginning with '#', and a leading "node,peer,op,at" header, are
// skipped. Events are returned sorted by time (input order breaks ties),
// with the handles the trace names sorted and deduplicated.
func ParseContactTrace(r io.Reader, base time.Time) ([]ContactEvent, []string, error) {
	var events []ContactEvent
	seen := make(map[string]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo, firstData := 0, true
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var ev ContactEvent
		var err error
		if strings.HasPrefix(line, "{") {
			ev, err = parseJSONContactLine(line, base)
		} else {
			// The first data line may be the canonical CSV header.
			if firstData && isTraceHeader(line) {
				firstData = false
				continue
			}
			ev, err = parseCSVContactLine(line, base)
		}
		firstData = false
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if ev.A == ev.B {
			return nil, nil, fmt.Errorf("line %d: node %q linked to itself", lineNo, ev.A)
		}
		seen[ev.A], seen[ev.B] = true, true
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("reading trace: %w", err)
	}
	if len(events) == 0 {
		return nil, nil, fmt.Errorf("empty contact trace")
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At.Before(events[j].At) })
	handles := make([]string, 0, len(seen))
	for h := range seen {
		handles = append(handles, h)
	}
	sort.Strings(handles)
	return events, handles, nil
}

// isTraceHeader reports whether a first CSV line is the canonical header.
func isTraceHeader(line string) bool {
	fields := strings.Split(line, ",")
	return len(fields) == 4 &&
		strings.EqualFold(strings.TrimSpace(fields[0]), "node") &&
		strings.EqualFold(strings.TrimSpace(fields[1]), "peer")
}

// parseCSVContactLine parses one comma-separated transition.
func parseCSVContactLine(line string, base time.Time) (ContactEvent, error) {
	fields := strings.Split(line, ",")
	if len(fields) != 4 {
		return ContactEvent{}, fmt.Errorf("want 4 fields (node,peer,op,at), got %d", len(fields))
	}
	node := strings.TrimSpace(fields[0])
	peer := strings.TrimSpace(fields[1])
	if node == "" || peer == "" {
		return ContactEvent{}, fmt.Errorf("empty node handle")
	}
	up, err := parseOp(strings.TrimSpace(fields[2]))
	if err != nil {
		return ContactEvent{}, err
	}
	at, err := parseTraceTime(strings.TrimSpace(fields[3]), base)
	if err != nil {
		return ContactEvent{}, err
	}
	return ContactEvent{At: at, A: node, B: peer, Up: up}, nil
}

// parseJSONContactLine parses one JSONL transition.
func parseJSONContactLine(line string, base time.Time) (ContactEvent, error) {
	var raw jsonContactEvent
	dec := json.NewDecoder(strings.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return ContactEvent{}, fmt.Errorf("bad JSON record: %w", err)
	}
	if raw.Node == "" || raw.Peer == "" {
		return ContactEvent{}, fmt.Errorf("empty node handle")
	}
	up, err := parseOp(raw.Op)
	if err != nil {
		return ContactEvent{}, err
	}
	if len(raw.At) == 0 {
		return ContactEvent{}, fmt.Errorf("missing \"at\"")
	}
	atText := string(raw.At)
	if strings.HasPrefix(atText, `"`) {
		if err := json.Unmarshal(raw.At, &atText); err != nil {
			return ContactEvent{}, fmt.Errorf("bad \"at\": %w", err)
		}
	}
	at, err := parseTraceTime(atText, base)
	if err != nil {
		return ContactEvent{}, err
	}
	return ContactEvent{At: at, A: raw.Node, B: raw.Peer, Up: up}, nil
}

// parseOp maps the transition keyword onto a direction.
func parseOp(op string) (bool, error) {
	switch strings.ToLower(op) {
	case "up", "conn", "start":
		return true, nil
	case "down", "disc", "end":
		return false, nil
	default:
		return false, fmt.Errorf("unknown op %q (want up or down)", op)
	}
}

// parseTraceTime accepts RFC 3339 or seconds-from-base.
func parseTraceTime(text string, base time.Time) (time.Time, error) {
	if secs, err := strconv.ParseFloat(text, 64); err == nil {
		if secs < 0 {
			return time.Time{}, fmt.Errorf("negative offset %q", text)
		}
		return base.Add(time.Duration(secs * float64(time.Second))), nil
	}
	at, err := time.Parse(time.RFC3339, text)
	if err != nil {
		return time.Time{}, fmt.Errorf("bad timestamp %q (want RFC 3339 or seconds offset)", text)
	}
	return at, nil
}
