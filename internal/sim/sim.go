// Package sim is the discrete-event simulator that replays the paper's
// in vivo evaluation in silico. It binds node mobility models to the
// simulated Multipeer-Connectivity medium, runs the complete, unmodified
// SOS stack (PKI bootstrap, certificate handshakes, encrypted sessions,
// routing schemes, message manager) on every simulated device, detects
// radio contacts from node positions, executes a scheduled workload of
// user actions, and feeds the metrics collector and trace recorder that
// regenerate every Figure-4 series.
//
// Runs are deterministic: one seed fixes key generation, nonces, mobility
// itineraries, and the workload, so results replay bit-identically.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"sos/internal/clock"
	"sos/internal/cloud"
	"sos/internal/core"
	"sos/internal/id"
	"sos/internal/metrics"
	"sos/internal/mobility"
	"sos/internal/mpc"
	"sos/internal/msg"
	"sos/internal/pki"
	"sos/internal/routing"
	"sos/internal/store"
	"sos/internal/trace"
)

// Action enumerates workload user actions.
type Action int

// Workload actions.
const (
	ActionPost Action = iota + 1
	ActionFollow
	ActionUnfollow
)

// Event is one scheduled user action.
type Event struct {
	At      time.Time
	Handle  string
	Action  Action
	Target  string // follow/unfollow target handle
	Payload []byte // post body
}

// NodeSpec describes one simulated device/user.
type NodeSpec struct {
	Handle string
	// Scheme selects the node's routing protocol; empty uses Config.Scheme.
	Scheme string
	// Mobility drives the node's position; required.
	Mobility mobility.Model
	// Follows pre-seeds quiet subscriptions (relationships that existed
	// before the study, not counted as in-app actions).
	Follows []string
	// Activity, when non-nil, reports whether the app is in the
	// foreground at a given instant. Apple's Multipeer Connectivity only
	// browses, advertises, and transfers while the app is active, so two
	// devices form a contact only when in range AND both active. Nil
	// means always active.
	Activity func(at time.Time) bool
}

// Config assembles a simulation.
type Config struct {
	Start    time.Time
	Duration time.Duration
	// Tick is the contact-detection sampling period (default 30 s).
	Tick time.Duration
	// Range is the radio contact radius in meters (default 35).
	Range float64
	// Tech is the link technology for detected contacts (default p2p WiFi).
	Tech mpc.Technology
	// Scheme is the default routing protocol (default interest-based).
	Scheme string
	// RelayTTL bounds how long nodes forward other users' messages; it
	// becomes each node's TTL eviction policy. Zero disables expiry.
	RelayTTL time.Duration
	// StoreQuota bounds each node's message buffer (messages); 0 =
	// unbounded. A finite quota opens the constrained-device workload:
	// the storage engines evict under pressure and the collector counts
	// every drop.
	StoreQuota int
	// StoreQuotaBytes bounds each node's buffer in bytes; 0 = unbounded.
	StoreQuotaBytes int
	// StorePolicy names the eviction policy (store.PolicyByName);
	// empty selects TTL when RelayTTL is set and drop-oldest otherwise.
	StorePolicy string
	// Seed fixes all randomness.
	Seed int64
	// Nodes are the simulated users.
	Nodes []NodeSpec
	// Workload is the scheduled action list (sorted internally).
	Workload []Event
}

// Node is one running simulated device.
type Node struct {
	Handle   string
	User     id.UserID
	MW       *core.Middleware
	Model    mobility.Model
	activity func(at time.Time) bool
	peer     mpc.PeerID
}

// Active reports whether the node's app is foregrounded at the instant.
func (n *Node) Active(at time.Time) bool {
	return n.activity == nil || n.activity(at)
}

// Position returns the node's current position.
func (n *Node) Position(at time.Time) mobility.Point {
	return n.Model.Position(at)
}

// Result bundles a finished run's outputs.
type Result struct {
	Collector   *metrics.Collector
	Recorder    *trace.Recorder
	MediumStats mpc.SimStats
	NodeStats   map[string]core.Stats
	Posts       int
	Follows     int
	Elapsed     time.Duration
}

// Sim is a configured simulation.
type Sim struct {
	cfg      Config
	clk      *clock.Virtual
	medium   *mpc.SimMedium
	svc      *cloud.Service
	nodes    []*Node
	byHandle map[string]*Node

	collector *metrics.Collector
	recorder  *trace.Recorder
	linked    map[[2]int]bool
	workload  []Event
}

// New builds a simulation: CA, cloud, bootstrap of every node, and the
// full middleware stack per node.
func New(cfg Config) (*Sim, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("sim: no nodes")
	}
	if cfg.Duration <= 0 {
		return nil, errors.New("sim: non-positive duration")
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 30 * time.Second
	}
	if cfg.Range <= 0 {
		cfg.Range = 35
	}
	if cfg.Tech == 0 {
		cfg.Tech = mpc.PeerToPeerWiFi
	}
	if cfg.Scheme == "" {
		cfg.Scheme = "interest"
	}

	master := rand.New(rand.NewSource(cfg.Seed))
	clk := clock.NewVirtual(cfg.Start)
	medium := mpc.NewSimMedium(clk)
	recorder := trace.NewRecorder()
	collector := metrics.NewCollector()
	medium.OnContact = recorder.RecordContact

	ca, err := pki.NewCA("AlleyOop Root CA",
		pki.WithClock(clk.Now),
		pki.WithEntropy(rand.New(rand.NewSource(master.Int63()))),
	)
	if err != nil {
		return nil, fmt.Errorf("sim: creating CA: %w", err)
	}
	svc := cloud.New(ca, cloud.WithClock(clk.Now))

	s := &Sim{
		cfg:       cfg,
		clk:       clk,
		medium:    medium,
		svc:       svc,
		byHandle:  make(map[string]*Node, len(cfg.Nodes)),
		collector: collector,
		recorder:  recorder,
		linked:    make(map[[2]int]bool),
	}

	for _, spec := range cfg.Nodes {
		if spec.Mobility == nil {
			return nil, fmt.Errorf("sim: node %q has no mobility model", spec.Handle)
		}
		if _, dup := s.byHandle[spec.Handle]; dup {
			return nil, fmt.Errorf("sim: duplicate handle %q", spec.Handle)
		}
		nodeRng := rand.New(rand.NewSource(master.Int63()))
		creds, err := cloud.Bootstrap(svc, spec.Handle, nodeRng)
		if err != nil {
			return nil, fmt.Errorf("sim: bootstrapping %q: %w", spec.Handle, err)
		}
		scheme := spec.Scheme
		if scheme == "" {
			scheme = cfg.Scheme
		}
		n := &Node{
			Handle:   spec.Handle,
			User:     creds.Ident.User,
			Model:    spec.Mobility,
			activity: spec.Activity,
			peer:     mpc.PeerID(spec.Handle),
		}
		// Every node runs a bounded storage engine; eviction drops feed
		// the collector so buffer pressure is a first-class metric.
		policy, err := store.PolicyByName(cfg.StorePolicy, cfg.RelayTTL)
		if err != nil {
			return nil, fmt.Errorf("sim: store policy: %w", err)
		}
		st := store.NewMemory(creds.Ident.User, store.Options{
			MaxMessages: cfg.StoreQuota,
			MaxBytes:    cfg.StoreQuotaBytes,
			Policy:      policy,
			Clock:       clk,
			OnEvict:     func(ev store.Eviction) { collector.Evicted(ev.Ref) },
		})
		mw, err := core.New(core.Config{
			Creds:    creds,
			Medium:   medium,
			PeerName: n.peer,
			Scheme:   scheme,
			Clock:    clk,
			Rand:     nodeRng,
			Routing:  routing.Options{Clock: clk, RelayTTL: cfg.RelayTTL},
			Store:    st,
			OnReceive: func(m *msg.Message, _ id.UserID) {
				s.onReceive(n, m)
			},
		})
		if err != nil {
			return nil, fmt.Errorf("sim: starting middleware for %q: %w", spec.Handle, err)
		}
		n.MW = mw
		s.nodes = append(s.nodes, n)
		s.byHandle[spec.Handle] = n
	}

	// Pre-seeded relationships (quiet: no action message).
	for _, spec := range cfg.Nodes {
		n := s.byHandle[spec.Handle]
		for _, target := range spec.Follows {
			followee, ok := s.byHandle[target]
			if !ok {
				return nil, fmt.Errorf("sim: %q follows unknown handle %q", spec.Handle, target)
			}
			n.MW.Subscribe(followee.User)
		}
	}

	s.workload = make([]Event, len(cfg.Workload))
	copy(s.workload, cfg.Workload)
	sort.SliceStable(s.workload, func(i, j int) bool { return s.workload[i].At.Before(s.workload[j].At) })
	return s, nil
}

// Nodes returns the running nodes.
func (s *Sim) Nodes() []*Node { return s.nodes }

// NodeByHandle looks a node up.
func (s *Sim) NodeByHandle(handle string) (*Node, bool) {
	n, ok := s.byHandle[handle]
	return n, ok
}

// onReceive instruments every message receipt: geo-tagged dissemination,
// transfer counting, and delivery detection (receipt by a subscriber of
// the author).
func (s *Sim) onReceive(n *Node, m *msg.Message) {
	now := s.clk.Now()
	ref := m.Ref()
	s.recorder.RecordPassed(ref, n.User, now, n.Model.Position(now))
	s.collector.Disseminated(ref)
	if n.MW.Store().IsSubscribed(m.Author) {
		s.collector.Delivered(ref, n.User, now, m.Hops)
	}
}

// Run executes the simulation to completion.
func (s *Sim) Run() (*Result, error) {
	end := s.cfg.Start.Add(s.cfg.Duration)
	posts, follows := 0, 0
	wi := 0

	for tick := s.cfg.Start; !tick.After(end); tick = tick.Add(s.cfg.Tick) {
		// Execute workload actions due before this tick, in order, with
		// the medium drained up to each action's instant.
		for wi < len(s.workload) && !s.workload[wi].At.After(tick) {
			ev := s.workload[wi]
			wi++
			s.medium.RunUntil(ev.At)
			s.clk.Set(ev.At)
			if err := s.execute(ev); err != nil {
				return nil, err
			}
			switch ev.Action {
			case ActionPost:
				posts++
			case ActionFollow:
				follows++
			}
		}
		s.medium.RunUntil(tick)
		s.clk.Set(tick)
		s.updateContacts(tick)
	}
	s.medium.RunUntil(end)
	s.clk.Set(end)

	nodeStats := make(map[string]core.Stats, len(s.nodes))
	for _, n := range s.nodes {
		nodeStats[n.Handle] = n.MW.Stats()
	}
	return &Result{
		Collector:   s.collector,
		Recorder:    s.recorder,
		MediumStats: s.medium.Stats(),
		NodeStats:   nodeStats,
		Posts:       posts,
		Follows:     follows,
		Elapsed:     s.cfg.Duration,
	}, nil
}

// execute performs one workload action.
func (s *Sim) execute(ev Event) error {
	n, ok := s.byHandle[ev.Handle]
	if !ok {
		return fmt.Errorf("sim: workload names unknown handle %q", ev.Handle)
	}
	switch ev.Action {
	case ActionPost:
		m, err := n.MW.Post(ev.Payload)
		if err != nil {
			return fmt.Errorf("sim: %s posting: %w", ev.Handle, err)
		}
		s.collector.MessageCreated(m.Ref(), m.Created)
		s.recorder.RecordCreated(m.Ref(), n.User, m.Created, n.Model.Position(m.Created))
	case ActionFollow:
		target, ok := s.byHandle[ev.Target]
		if !ok {
			return fmt.Errorf("sim: follow target %q unknown", ev.Target)
		}
		if _, err := n.MW.Follow(target.User); err != nil {
			return fmt.Errorf("sim: %s following %s: %w", ev.Handle, ev.Target, err)
		}
	case ActionUnfollow:
		target, ok := s.byHandle[ev.Target]
		if !ok {
			return fmt.Errorf("sim: unfollow target %q unknown", ev.Target)
		}
		if _, err := n.MW.Unfollow(target.User); err != nil {
			return fmt.Errorf("sim: %s unfollowing %s: %w", ev.Handle, ev.Target, err)
		}
	default:
		return fmt.Errorf("sim: unknown action %d", ev.Action)
	}
	return nil
}

// updateContacts samples all node positions and app activity, then
// reconciles radio links: a contact requires proximity and both apps in
// the foreground (the MPC constraint).
func (s *Sim) updateContacts(at time.Time) {
	positions := make([]mobility.Point, len(s.nodes))
	active := make([]bool, len(s.nodes))
	for i, n := range s.nodes {
		positions[i] = n.Model.Position(at)
		active[i] = n.Active(at)
	}
	for i := 0; i < len(s.nodes); i++ {
		for j := i + 1; j < len(s.nodes); j++ {
			key := [2]int{i, j}
			inRange := active[i] && active[j] &&
				positions[i].DistanceTo(positions[j]) <= s.cfg.Range
			switch {
			case inRange && !s.linked[key]:
				s.medium.SetLink(s.nodes[i].peer, s.nodes[j].peer, s.cfg.Tech)
				s.linked[key] = true
			case !inRange && s.linked[key]:
				s.medium.CutLink(s.nodes[i].peer, s.nodes[j].peer)
				delete(s.linked, key)
			}
		}
	}
}
