// Package sim is the discrete-event simulator that replays the paper's
// in vivo evaluation in silico. It binds node mobility models to the
// simulated Multipeer-Connectivity medium, runs the complete, unmodified
// SOS stack (PKI bootstrap, certificate handshakes, encrypted sessions,
// routing schemes, message manager) on every simulated device, detects
// radio contacts from node positions, executes a scheduled workload of
// user actions, and feeds the metrics collector and trace recorder that
// regenerate every Figure-4 series.
//
// Runs are deterministic: one seed fixes key generation, nonces, mobility
// itineraries, and the workload, so results replay bit-identically.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"sos/internal/clock"
	"sos/internal/cloud"
	"sos/internal/core"
	"sos/internal/id"
	"sos/internal/metrics"
	"sos/internal/mobility"
	"sos/internal/mpc"
	"sos/internal/msg"
	"sos/internal/pki"
	"sos/internal/routing"
	"sos/internal/store"
	"sos/internal/trace"
)

// Action enumerates workload user actions.
type Action int

// Workload actions.
const (
	ActionPost Action = iota + 1
	ActionFollow
	ActionUnfollow
)

// Event is one scheduled user action.
type Event struct {
	At      time.Time
	Handle  string
	Action  Action
	Target  string // follow/unfollow target handle
	Payload []byte // post body
}

// NodeSpec describes one simulated device/user.
type NodeSpec struct {
	Handle string
	// Scheme selects the node's routing protocol; empty uses Config.Scheme.
	Scheme string
	// Mobility drives the node's position; required.
	Mobility mobility.Model
	// Follows pre-seeds quiet subscriptions (relationships that existed
	// before the study, not counted as in-app actions).
	Follows []string
	// Activity, when non-nil, reports whether the app is in the
	// foreground at a given instant. Apple's Multipeer Connectivity only
	// browses, advertises, and transfers while the app is active, so two
	// devices form a contact only when in range AND both active. Nil
	// means always active.
	Activity func(at time.Time) bool
}

// Config assembles a simulation.
type Config struct {
	Start    time.Time
	Duration time.Duration
	// Tick is the contact-detection sampling period (default 30 s).
	Tick time.Duration
	// Range is the radio contact radius in meters (default 35).
	Range float64
	// Tech is the link technology for detected contacts (default p2p WiFi).
	Tech mpc.Technology
	// Scheme is the default routing protocol (default interest-based).
	Scheme string
	// RelayTTL bounds how long nodes forward other users' messages; it
	// becomes each node's TTL eviction policy. Zero disables expiry.
	RelayTTL time.Duration
	// StoreQuota bounds each node's message buffer (messages); 0 =
	// unbounded. A finite quota opens the constrained-device workload:
	// the storage engines evict under pressure and the collector counts
	// every drop.
	StoreQuota int
	// StoreQuotaBytes bounds each node's buffer in bytes; 0 = unbounded.
	StoreQuotaBytes int
	// StorePolicy names the eviction policy (store.PolicyByName);
	// empty selects TTL when RelayTTL is set and drop-oldest otherwise.
	StorePolicy string
	// Seed fixes all randomness.
	Seed int64
	// Nodes are the simulated users.
	Nodes []NodeSpec
	// Workload is the scheduled action list (sorted internally).
	Workload []Event
	// Contacts, when non-empty, switches the run to trace-driven
	// contacts: the listed link up/down events are replayed verbatim
	// (Haggle/CRAWDAD-style encounter dumps parsed by ParseContactTrace)
	// and position-based contact detection is bypassed entirely. Nodes
	// may then omit their mobility model.
	Contacts []ContactEvent
}

// Node is one running simulated device.
type Node struct {
	Handle   string
	User     id.UserID
	MW       *core.Middleware
	Model    mobility.Model
	activity func(at time.Time) bool
	peer     mpc.PeerID
	idx      int
}

// Active reports whether the node's app is foregrounded at the instant.
func (n *Node) Active(at time.Time) bool {
	return n.activity == nil || n.activity(at)
}

// Position returns the node's current position. Trace-driven nodes
// without a mobility model sit at the origin.
func (n *Node) Position(at time.Time) mobility.Point {
	if n.Model == nil {
		return mobility.Point{}
	}
	return n.Model.Position(at)
}

// Result bundles a finished run's outputs.
type Result struct {
	Collector   *metrics.Collector
	Recorder    *trace.Recorder
	MediumStats mpc.SimStats
	NodeStats   map[string]core.Stats
	Posts       int
	Follows     int
	Elapsed     time.Duration
}

// Sim is a configured simulation.
type Sim struct {
	cfg      Config
	clk      *clock.Virtual
	medium   *mpc.SimMedium
	svc      *cloud.Service
	nodes    []*Node
	byHandle map[string]*Node

	collector *metrics.Collector
	recorder  *trace.Recorder
	linked    map[[2]int32]bool
	workload  []Event
	contacts  []ContactEvent
	// desired is the trace's current wish per pair: scripted up, not yet
	// scripted down. The effective link additionally requires both apps
	// active, so linked ⊆ desired at all times in trace mode.
	desired map[[2]int32]bool

	// Contact-detection state, reused across ticks so the hot loop does
	// not allocate.
	index     *ContactIndex
	positions []mobility.Point
	active    []bool
	curr      [][2]int32
	currSet   map[[2]int32]bool
	cuts      [][2]int32
}

// New builds a simulation: CA, cloud, bootstrap of every node, and the
// full middleware stack per node.
func New(cfg Config) (*Sim, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("sim: no nodes")
	}
	if cfg.Duration <= 0 {
		return nil, errors.New("sim: non-positive duration")
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 30 * time.Second
	}
	if cfg.Range <= 0 {
		cfg.Range = 35
	}
	if cfg.Tech == 0 {
		cfg.Tech = mpc.PeerToPeerWiFi
	}
	if cfg.Scheme == "" {
		cfg.Scheme = "interest"
	}

	master := rand.New(rand.NewSource(cfg.Seed))
	clk := clock.NewVirtual(cfg.Start)
	medium := mpc.NewSimMedium(clk)
	recorder := trace.NewRecorder()
	collector := metrics.NewCollector()
	medium.OnContact = recorder.RecordContact

	ca, err := pki.NewCA("AlleyOop Root CA",
		pki.WithClock(clk.Now),
		pki.WithEntropy(rand.New(rand.NewSource(master.Int63()))),
	)
	if err != nil {
		return nil, fmt.Errorf("sim: creating CA: %w", err)
	}
	svc := cloud.New(ca, cloud.WithClock(clk.Now))

	s := &Sim{
		cfg:       cfg,
		clk:       clk,
		medium:    medium,
		svc:       svc,
		byHandle:  make(map[string]*Node, len(cfg.Nodes)),
		collector: collector,
		recorder:  recorder,
		linked:    make(map[[2]int32]bool),
	}

	for _, spec := range cfg.Nodes {
		if spec.Mobility == nil && len(cfg.Contacts) == 0 {
			return nil, fmt.Errorf("sim: node %q has no mobility model", spec.Handle)
		}
		if _, dup := s.byHandle[spec.Handle]; dup {
			return nil, fmt.Errorf("sim: duplicate handle %q", spec.Handle)
		}
		nodeRng := rand.New(rand.NewSource(master.Int63()))
		creds, err := cloud.Bootstrap(svc, spec.Handle, nodeRng)
		if err != nil {
			return nil, fmt.Errorf("sim: bootstrapping %q: %w", spec.Handle, err)
		}
		scheme := spec.Scheme
		if scheme == "" {
			scheme = cfg.Scheme
		}
		n := &Node{
			Handle:   spec.Handle,
			User:     creds.Ident.User,
			Model:    spec.Mobility,
			activity: spec.Activity,
			peer:     mpc.PeerID(spec.Handle),
		}
		// Every node runs a bounded storage engine; eviction drops feed
		// the collector so buffer pressure is a first-class metric.
		policy, err := store.PolicyByName(cfg.StorePolicy, cfg.RelayTTL)
		if err != nil {
			return nil, fmt.Errorf("sim: store policy: %w", err)
		}
		st := store.NewMemory(creds.Ident.User, store.Options{
			MaxMessages: cfg.StoreQuota,
			MaxBytes:    cfg.StoreQuotaBytes,
			Policy:      policy,
			Clock:       clk,
			OnEvict:     func(ev store.Eviction) { collector.Evicted(ev.Ref) },
		})
		mw, err := core.New(core.Config{
			Creds:    creds,
			Medium:   medium,
			PeerName: n.peer,
			Scheme:   scheme,
			Clock:    clk,
			Rand:     nodeRng,
			Routing:  routing.Options{Clock: clk, RelayTTL: cfg.RelayTTL},
			Store:    st,
			OnReceive: func(m *msg.Message, _ id.UserID) {
				s.onReceive(n, m)
			},
		})
		if err != nil {
			return nil, fmt.Errorf("sim: starting middleware for %q: %w", spec.Handle, err)
		}
		n.MW = mw
		n.idx = len(s.nodes)
		s.nodes = append(s.nodes, n)
		s.byHandle[spec.Handle] = n
	}

	// Pre-seeded relationships (quiet: no action message).
	for _, spec := range cfg.Nodes {
		n := s.byHandle[spec.Handle]
		for _, target := range spec.Follows {
			followee, ok := s.byHandle[target]
			if !ok {
				return nil, fmt.Errorf("sim: %q follows unknown handle %q", spec.Handle, target)
			}
			n.MW.Subscribe(followee.User)
		}
	}

	s.workload = make([]Event, len(cfg.Workload))
	copy(s.workload, cfg.Workload)
	sort.SliceStable(s.workload, func(i, j int) bool { return s.workload[i].At.Before(s.workload[j].At) })

	// Trace-driven contacts: validate the handles once, then replay in
	// chronological order.
	s.contacts = make([]ContactEvent, len(cfg.Contacts))
	copy(s.contacts, cfg.Contacts)
	sort.SliceStable(s.contacts, func(i, j int) bool { return s.contacts[i].At.Before(s.contacts[j].At) })
	for _, ev := range s.contacts {
		if _, ok := s.byHandle[ev.A]; !ok {
			return nil, fmt.Errorf("sim: contact trace names unknown handle %q", ev.A)
		}
		if _, ok := s.byHandle[ev.B]; !ok {
			return nil, fmt.Errorf("sim: contact trace names unknown handle %q", ev.B)
		}
		if ev.A == ev.B {
			return nil, fmt.Errorf("sim: contact trace links %q to itself", ev.A)
		}
	}

	// Contact-detection scratch, sized once for the fleet.
	s.index = NewContactIndex(cfg.Range)
	s.positions = make([]mobility.Point, len(s.nodes))
	s.active = make([]bool, len(s.nodes))
	s.currSet = make(map[[2]int32]bool)
	s.desired = make(map[[2]int32]bool)
	return s, nil
}

// Nodes returns the running nodes.
func (s *Sim) Nodes() []*Node { return s.nodes }

// NodeByHandle looks a node up.
func (s *Sim) NodeByHandle(handle string) (*Node, bool) {
	n, ok := s.byHandle[handle]
	return n, ok
}

// onReceive instruments every message receipt: geo-tagged dissemination,
// transfer counting, and delivery detection (receipt by a subscriber of
// the author).
func (s *Sim) onReceive(n *Node, m *msg.Message) {
	now := s.clk.Now()
	ref := m.Ref()
	s.recorder.RecordPassed(ref, n.User, now, n.Position(now))
	s.collector.Disseminated(ref)
	if n.MW.Store().IsSubscribed(m.Author) {
		s.collector.Delivered(ref, n.User, now, m.Hops)
	}
}

// Run executes the simulation to completion.
func (s *Sim) Run() (*Result, error) {
	end := s.cfg.Start.Add(s.cfg.Duration)
	posts, follows := 0, 0
	wi := 0

	ci := 0
	// drain executes workload actions and trace contact events due at or
	// before `upto`, merged in time order (contacts first on ties, so a
	// link that comes up at t carries a post made at t), with the medium
	// run up to each event's instant.
	drain := func(upto time.Time) error {
		for {
			wDue := wi < len(s.workload) && !s.workload[wi].At.After(upto)
			cDue := ci < len(s.contacts) && !s.contacts[ci].At.After(upto)
			if !wDue && !cDue {
				return nil
			}
			if cDue && (!wDue || !s.workload[wi].At.Before(s.contacts[ci].At)) {
				ev := s.contacts[ci]
				ci++
				s.medium.RunUntil(ev.At)
				s.clk.Set(ev.At)
				s.applyContact(ev)
				continue
			}
			ev := s.workload[wi]
			wi++
			s.medium.RunUntil(ev.At)
			s.clk.Set(ev.At)
			if err := s.execute(ev); err != nil {
				return err
			}
			switch ev.Action {
			case ActionPost:
				posts++
			case ActionFollow:
				follows++
			}
		}
	}
	for tick := s.cfg.Start; !tick.After(end); tick = tick.Add(s.cfg.Tick) {
		if err := drain(tick); err != nil {
			return nil, err
		}
		s.medium.RunUntil(tick)
		s.clk.Set(tick)
		if len(s.contacts) == 0 {
			// Position-driven detection; a contact trace replaces it.
			s.updateContacts(tick)
		} else {
			// Activity (churn) is resampled each tick in trace mode too:
			// a scripted contact only holds while both apps are up.
			s.reconcileTraceLinks(tick)
		}
	}
	// The duration need not be a multiple of the tick: events scheduled
	// in the partial tail still happen.
	if err := drain(end); err != nil {
		return nil, err
	}
	s.medium.RunUntil(end)
	s.clk.Set(end)

	nodeStats := make(map[string]core.Stats, len(s.nodes))
	for _, n := range s.nodes {
		nodeStats[n.Handle] = n.MW.Stats()
	}
	return &Result{
		Collector:   s.collector,
		Recorder:    s.recorder,
		MediumStats: s.medium.Stats(),
		NodeStats:   nodeStats,
		Posts:       posts,
		Follows:     follows,
		Elapsed:     s.cfg.Duration,
	}, nil
}

// execute performs one workload action.
func (s *Sim) execute(ev Event) error {
	n, ok := s.byHandle[ev.Handle]
	if !ok {
		return fmt.Errorf("sim: workload names unknown handle %q", ev.Handle)
	}
	switch ev.Action {
	case ActionPost:
		m, err := n.MW.Post(ev.Payload)
		if err != nil {
			return fmt.Errorf("sim: %s posting: %w", ev.Handle, err)
		}
		s.collector.MessageCreated(m.Ref(), m.Created)
		s.recorder.RecordCreated(m.Ref(), n.User, m.Created, n.Position(m.Created))
	case ActionFollow:
		target, ok := s.byHandle[ev.Target]
		if !ok {
			return fmt.Errorf("sim: follow target %q unknown", ev.Target)
		}
		if _, err := n.MW.Follow(target.User); err != nil {
			return fmt.Errorf("sim: %s following %s: %w", ev.Handle, ev.Target, err)
		}
	case ActionUnfollow:
		target, ok := s.byHandle[ev.Target]
		if !ok {
			return fmt.Errorf("sim: unfollow target %q unknown", ev.Target)
		}
		if _, err := n.MW.Unfollow(target.User); err != nil {
			return fmt.Errorf("sim: %s unfollowing %s: %w", ev.Handle, ev.Target, err)
		}
	default:
		return fmt.Errorf("sim: unknown action %d", ev.Action)
	}
	return nil
}

// applyContact records one trace-driven link transition and applies its
// effective state. The trace says what the radios scripted; activity
// (churn, app foregrounding) still gates the actual link, matching the
// live modes where a sleeping device drops out of every contact.
func (s *Sim) applyContact(ev ContactEvent) {
	a, b := s.byHandle[ev.A], s.byHandle[ev.B]
	key := pairKeyOf(a.idx, b.idx)
	if ev.Up {
		s.desired[key] = true
	} else {
		delete(s.desired, key)
	}
	s.reconcilePair(key, s.clk.Now())
}

// pairKeyOf orders two node indices into a link key.
func pairKeyOf(i, j int) [2]int32 {
	if i > j {
		i, j = j, i
	}
	return [2]int32{int32(i), int32(j)}
}

// reconcilePair applies the effective state of one scripted pair: linked
// iff the trace wants it up and both apps are in the foreground.
func (s *Sim) reconcilePair(key [2]int32, at time.Time) {
	a, b := s.nodes[key[0]], s.nodes[key[1]]
	up := s.desired[key] && a.Active(at) && b.Active(at)
	switch {
	case up && !s.linked[key]:
		s.medium.SetLink(a.peer, b.peer, s.cfg.Tech)
		s.linked[key] = true
	case !up && s.linked[key]:
		s.medium.CutLink(a.peer, b.peer)
		delete(s.linked, key)
	}
}

// reconcileTraceLinks resamples activity for every scripted-up pair each
// tick — cutting links whose endpoint slept, restoring links whose
// endpoints woke while still scripted together — in sorted order for
// deterministic replay. linked ⊆ desired, so iterating desired covers
// every link that could need cutting.
func (s *Sim) reconcileTraceLinks(at time.Time) {
	if len(s.desired) == 0 {
		return
	}
	s.cuts = s.cuts[:0] // scratch: unused by the grid path in trace mode
	for key := range s.desired {
		s.cuts = append(s.cuts, key)
	}
	sort.Slice(s.cuts, func(i, j int) bool {
		if s.cuts[i][0] != s.cuts[j][0] {
			return s.cuts[i][0] < s.cuts[j][0]
		}
		return s.cuts[i][1] < s.cuts[j][1]
	})
	for _, key := range s.cuts {
		s.reconcilePair(key, at)
	}
}

// updateContacts samples all node positions and app activity (sharded
// across CPUs), finds the in-range pairs through the spatial grid index,
// and reconciles radio links against the previous tick: a contact
// requires proximity and both apps in the foreground (the MPC
// constraint). Sleeping nodes are skipped entirely — they are never
// inserted into the grid, and any link they held is cut by the diff.
// Every per-tick structure is reused, so the pass allocates nothing in
// steady state, and both the sweep order and the sorted cut order are
// deterministic for bit-identical replays.
func (s *Sim) updateContacts(at time.Time) {
	s.samplePositions(at)

	s.curr = s.curr[:0]
	s.index.Sweep(s.positions, s.active, func(i, j int32) {
		s.curr = append(s.curr, [2]int32{i, j})
	})

	clear(s.currSet)
	for _, key := range s.curr {
		s.currSet[key] = true
		if !s.linked[key] {
			s.medium.SetLink(s.nodes[key[0]].peer, s.nodes[key[1]].peer, s.cfg.Tech)
			s.linked[key] = true
		}
	}
	// Every current pair is in linked by now, so linked ⊇ currSet and a
	// size mismatch is exactly "some link must be cut".
	if len(s.linked) > len(s.currSet) {
		s.cuts = s.cuts[:0]
		for key := range s.linked {
			if !s.currSet[key] {
				s.cuts = append(s.cuts, key)
			}
		}
		// Map iteration order is random; sort so CutLink event order (and
		// hence the whole event-queue schedule) replays identically.
		sort.Slice(s.cuts, func(i, j int) bool {
			if s.cuts[i][0] != s.cuts[j][0] {
				return s.cuts[i][0] < s.cuts[j][0]
			}
			return s.cuts[i][1] < s.cuts[j][1]
		})
		for _, key := range s.cuts {
			s.medium.CutLink(s.nodes[key[0]].peer, s.nodes[key[1]].peer)
			delete(s.linked, key)
		}
	}
}
