package sim

import (
	"math"
	"math/rand"
	"time"

	"sos/internal/mobility"
)

// ContactBenchSamples is one benchmark fleet's precomputed tick inputs:
// Positions[t] and Active[t] are the sweep arguments for sample instant
// t. Precomputing keeps mobility interpolation out of the timed region,
// so BenchmarkSimContacts measures contact detection and nothing else.
type ContactBenchSamples struct {
	Nodes     int
	RangeM    float64
	Positions [][]mobility.Point
	Active    [][]bool
}

// ContactBenchFleet builds the canonical contact-detection benchmark
// fleet: n random-waypoint nodes at constant density (the area scales
// with n, pinned to the 1k-node scenario's 1000 nodes per 4000 m
// square), 35 m radio range, one fifth of the fleet asleep at any
// instant, sampled at `samples` successive 30 s ticks. Everything is
// seeded, so sosbench's committed baseline numbers (checks per tick)
// are bit-reproducible across hosts.
func ContactBenchFleet(n, samples int, seed int64) *ContactBenchSamples {
	const rangeM = 35.0
	side := 4000.0 * math.Sqrt(float64(n)/1000.0)
	start := time.Date(2017, 4, 3, 9, 0, 0, 0, time.UTC)
	master := rand.New(rand.NewSource(seed))
	models := make([]mobility.Model, n)
	for i := range models {
		m, err := mobility.NewRandomWaypoint(mobility.RandomWaypointConfig{
			Area:     mobility.Area{W: side, H: side},
			Start:    start,
			Duration: time.Duration(samples+1) * 30 * time.Second,
			SpeedMin: 1, SpeedMax: 3,
		}, rand.New(rand.NewSource(master.Int63())))
		if err != nil {
			panic(err) // impossible: config is fixed and valid
		}
		models[i] = m
	}
	out := &ContactBenchSamples{
		Nodes:     n,
		RangeM:    rangeM,
		Positions: make([][]mobility.Point, samples),
		Active:    make([][]bool, samples),
	}
	actRng := rand.New(rand.NewSource(master.Int63()))
	for t := 0; t < samples; t++ {
		at := start.Add(time.Duration(t) * 30 * time.Second)
		pos := make([]mobility.Point, n)
		act := make([]bool, n)
		for i := range models {
			pos[i] = models[i].Position(at)
			act[i] = actRng.Float64() < 0.8
		}
		out.Positions[t] = pos
		out.Active[t] = act
	}
	return out
}
