package sim

import (
	"testing"
	"time"

	"sos/internal/metrics"
	"sos/internal/mobility"
	"sos/internal/mpc"
)

var start = time.Date(2017, 4, 3, 0, 0, 0, 0, time.UTC)

// twoNodeConfig builds a minimal scenario: two stationary nodes in range.
func twoNodeConfig(scheme string, workload []Event) Config {
	return Config{
		Start:    start,
		Duration: time.Hour,
		Tick:     10 * time.Second,
		Range:    50,
		Scheme:   scheme,
		Seed:     1,
		Nodes: []NodeSpec{
			{Handle: "alice", Mobility: mobility.Stationary(mobility.Point{X: 0, Y: 0})},
			{Handle: "bob", Mobility: mobility.Stationary(mobility.Point{X: 10, Y: 0}), Follows: []string{"alice"}},
		},
		Workload: workload,
	}
}

func TestTwoNodeDelivery(t *testing.T) {
	workload := []Event{
		{At: start.Add(5 * time.Minute), Handle: "alice", Action: ActionPost, Payload: []byte("hi")},
	}
	s, err := New(twoNodeConfig("interest", workload))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Posts != 1 {
		t.Errorf("posts = %d, want 1", res.Posts)
	}
	if res.Collector.CreatedCount() != 1 {
		t.Errorf("created = %d, want 1", res.Collector.CreatedCount())
	}
	deliveries := res.Collector.Deliveries(metrics.AllHops)
	if len(deliveries) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(deliveries))
	}
	if deliveries[0].Hops != 1 {
		t.Errorf("hops = %d, want 1", deliveries[0].Hops)
	}
	if deliveries[0].Delay() <= 0 || deliveries[0].Delay() > 10*time.Minute {
		t.Errorf("delay = %v, want small positive", deliveries[0].Delay())
	}
}

func TestMovingNodesMeetAndDeliver(t *testing.T) {
	// Bob oscillates: far from alice for 30 minutes, then at her position.
	bobTrace, err := mobility.NewTrace([]mobility.Waypoint{
		{At: start, Pos: mobility.Point{X: 5000, Y: 5000}},
		{At: start.Add(30 * time.Minute), Pos: mobility.Point{X: 5000, Y: 5000}},
		{At: start.Add(40 * time.Minute), Pos: mobility.Point{X: 0, Y: 0}},
		{At: start.Add(2 * time.Hour), Pos: mobility.Point{X: 0, Y: 0}},
	})
	if err != nil {
		t.Fatalf("NewTrace: %v", err)
	}
	cfg := Config{
		Start:    start,
		Duration: 90 * time.Minute,
		Tick:     15 * time.Second,
		Range:    35,
		Scheme:   "interest",
		Seed:     2,
		Nodes: []NodeSpec{
			{Handle: "alice", Mobility: mobility.Stationary(mobility.Point{X: 0, Y: 0})},
			{Handle: "bob", Mobility: bobTrace, Follows: []string{"alice"}},
		},
		Workload: []Event{
			{At: start.Add(time.Minute), Handle: "alice", Action: ActionPost, Payload: []byte("catch me later")},
		},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	deliveries := res.Collector.Deliveries(metrics.AllHops)
	if len(deliveries) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(deliveries))
	}
	// The post existed from minute 1, but bob only arrived ~minute 40:
	// the delay reflects the DTN wait, not transmission time.
	if d := deliveries[0].Delay(); d < 35*time.Minute || d > 50*time.Minute {
		t.Errorf("delay = %v, want ≈ 39–45 min", d)
	}
	if res.Recorder.ContactCount() == 0 {
		t.Error("no contacts recorded")
	}
}

func TestFollowActionCreatesSubscription(t *testing.T) {
	workload := []Event{
		{At: start.Add(time.Minute), Handle: "bob", Action: ActionFollow, Target: "alice"},
		{At: start.Add(10 * time.Minute), Handle: "alice", Action: ActionPost, Payload: []byte("to my new follower")},
	}
	cfg := twoNodeConfig("interest", workload)
	cfg.Nodes[1].Follows = nil // no pre-seeded subscription this time
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Follows != 1 {
		t.Errorf("follow actions = %d, want 1", res.Follows)
	}
	if len(res.Collector.Deliveries(metrics.AllHops)) != 1 {
		t.Error("post not delivered after in-app follow")
	}
}

func TestDeterminism(t *testing.T) {
	scenario := func() (*Result, error) {
		g, err := NewGainesville(GainesvilleConfig{Seed: 99, Days: 1, Posts: 20, InAppFollows: 10})
		if err != nil {
			return nil, err
		}
		s, err := New(g.Config)
		if err != nil {
			return nil, err
		}
		return s.Run()
	}
	a, err := scenario()
	if err != nil {
		t.Fatalf("run A: %v", err)
	}
	b, err := scenario()
	if err != nil {
		t.Fatalf("run B: %v", err)
	}
	if a.Collector.Disseminations() != b.Collector.Disseminations() {
		t.Errorf("disseminations differ: %d vs %d", a.Collector.Disseminations(), b.Collector.Disseminations())
	}
	if len(a.Collector.Deliveries(metrics.AllHops)) != len(b.Collector.Deliveries(metrics.AllHops)) {
		t.Error("delivery counts differ between identical seeds")
	}
	// Every event count must replay exactly. BytesDelivered is exempt:
	// Go's crypto/ecdsa deliberately injects scheduling randomness
	// (randutil.MaybeReadByte), so DER signature lengths vary by ±2 bytes
	// per signature even with a seeded reader. All orderings, counts, and
	// metrics are unaffected.
	normalize := func(s mpc.SimStats) mpc.SimStats { s.BytesDelivered = 0; return s }
	if normalize(a.MediumStats) != normalize(b.MediumStats) {
		t.Errorf("medium stats differ: %+v vs %+v", a.MediumStats, b.MediumStats)
	}
	byteDrift := float64(a.MediumStats.BytesDelivered) - float64(b.MediumStats.BytesDelivered)
	if byteDrift > 1000 || byteDrift < -1000 {
		t.Errorf("byte totals drifted beyond signature-length noise: %d vs %d",
			a.MediumStats.BytesDelivered, b.MediumStats.BytesDelivered)
	}
}

func TestGainesvilleScenarioShape(t *testing.T) {
	g, err := NewGainesville(GainesvilleConfig{Seed: 7})
	if err != nil {
		t.Fatalf("NewGainesville: %v", err)
	}
	if len(g.Config.Nodes) != 10 {
		t.Errorf("nodes = %d, want 10", len(g.Config.Nodes))
	}
	if len(g.Subscriptions) != 58 {
		t.Errorf("subscriptions = %d, want 58 (relationship edges)", len(g.Subscriptions))
	}
	posts, follows := 0, 0
	for _, ev := range g.Config.Workload {
		switch ev.Action {
		case ActionPost:
			posts++
		case ActionFollow:
			follows++
		}
	}
	if posts != 259 {
		t.Errorf("posts = %d, want 259", posts)
	}
	if follows != 46 {
		t.Errorf("in-app follows = %d, want 46", follows)
	}
	// Pre-seeded follows cover the remaining 12 edges.
	preSeeded := 0
	for _, n := range g.Config.Nodes {
		preSeeded += len(n.Follows)
	}
	if preSeeded != 12 {
		t.Errorf("pre-seeded follows = %d, want 12", preSeeded)
	}
	if g.Config.Duration != 7*24*time.Hour {
		t.Errorf("duration = %v, want 168h", g.Config.Duration)
	}
}

func TestGainesvilleAblationSize(t *testing.T) {
	g, err := NewGainesville(GainesvilleConfig{Seed: 7, Users: 20, Days: 1, Posts: 10, InAppFollows: 5})
	if err != nil {
		t.Fatalf("NewGainesville: %v", err)
	}
	if len(g.Config.Nodes) != 20 {
		t.Errorf("nodes = %d, want 20", len(g.Config.Nodes))
	}
	if g.Graph.N() != 20 {
		t.Errorf("graph size = %d, want 20", g.Graph.N())
	}
	// Density should approximate the deployment's 0.64.
	if d := g.Graph.Density(); d < 0.55 || d > 0.73 {
		t.Errorf("ablation graph density = %f, want ≈ 0.64", d)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Duration: time.Hour}); err == nil {
		t.Error("no nodes accepted")
	}
	bad := twoNodeConfig("interest", nil)
	bad.Duration = 0
	if _, err := New(bad); err == nil {
		t.Error("zero duration accepted")
	}
	noMobility := twoNodeConfig("interest", nil)
	noMobility.Nodes[0].Mobility = nil
	if _, err := New(noMobility); err == nil {
		t.Error("nil mobility accepted")
	}
	dup := twoNodeConfig("interest", nil)
	dup.Nodes[1].Handle = "alice"
	if _, err := New(dup); err == nil {
		t.Error("duplicate handle accepted")
	}
	unknownFollow := twoNodeConfig("interest", nil)
	unknownFollow.Nodes[1].Follows = []string{"ghost"}
	if _, err := New(unknownFollow); err == nil {
		t.Error("unknown follow target accepted")
	}
}

func TestWorkloadValidation(t *testing.T) {
	cfg := twoNodeConfig("interest", []Event{
		{At: start.Add(time.Minute), Handle: "ghost", Action: ActionPost},
	})
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Run(); err == nil {
		t.Error("workload with unknown handle ran")
	}
}

// TestBufferPressureScenario runs the constrained-device workload: a
// finite quota forces evictions on the ferry's critical path, the
// collector counts every drop, and deliveries still happen.
func TestBufferPressureScenario(t *testing.T) {
	run := func(quota int) (*Result, *BufferPressure) {
		bp, err := NewBufferPressure(BufferPressureConfig{Seed: 3, Quota: quota})
		if err != nil {
			t.Fatalf("NewBufferPressure: %v", err)
		}
		s, err := New(bp.Config)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res, bp
	}

	pressured, bp := run(12)
	if got := pressured.Collector.Evictions(); got == 0 {
		t.Error("finite quota produced no evictions")
	}
	delivered := len(pressured.Collector.Deliveries(metrics.AllHops))
	if delivered == 0 {
		t.Error("no deliveries under buffer pressure")
	}
	// Per-node store stats surface the drops too.
	var storeEvictions uint64
	for _, st := range pressured.NodeStats {
		storeEvictions += st.Store.Evictions + st.Store.Expirations
	}
	if storeEvictions == 0 {
		t.Error("node store stats recorded no evictions")
	}
	if q := bp.Config.StoreQuota; q != 12 {
		t.Fatalf("scenario quota = %d, want 12", q)
	}
	// Non-authoring nodes must respect the quota exactly; authors may
	// exceed it with their own messages, which are never evicted.
	for handle, st := range pressured.NodeStats {
		if handle[0] == 'a' {
			continue
		}
		if st.Store.Messages > 12 {
			t.Errorf("%s holds %d messages, quota 12", handle, st.Store.Messages)
		}
	}

	// The unbounded control arm evicts nothing and delivers at least as
	// much as the pressured run.
	control, _ := run(-1)
	if got := control.Collector.Evictions(); got != 0 {
		t.Errorf("unbounded control arm evicted %d messages", got)
	}
	if controlDelivered := len(control.Collector.Deliveries(metrics.AllHops)); controlDelivered < delivered {
		t.Errorf("control deliveries %d < pressured deliveries %d", controlDelivered, delivered)
	}
}

func TestEpidemicOutperformsInterestInCoverage(t *testing.T) {
	// Three nodes in a line; only the far node subscribed. Epidemic
	// relays through the middle non-subscriber; interest-based cannot.
	line := func(scheme string) int {
		cfg := Config{
			Start:    start,
			Duration: 30 * time.Minute,
			Tick:     10 * time.Second,
			Range:    30,
			Scheme:   scheme,
			Seed:     5,
			Nodes: []NodeSpec{
				{Handle: "alice", Mobility: mobility.Stationary(mobility.Point{X: 0, Y: 0})},
				{Handle: "mid", Mobility: mobility.Stationary(mobility.Point{X: 25, Y: 0})},
				{Handle: "far", Mobility: mobility.Stationary(mobility.Point{X: 50, Y: 0}), Follows: []string{"alice"}},
			},
			Workload: []Event{
				{At: start.Add(time.Minute), Handle: "alice", Action: ActionPost, Payload: []byte("relay me")},
			},
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return len(res.Collector.Deliveries(metrics.AllHops))
	}
	if got := line("epidemic"); got != 1 {
		t.Errorf("epidemic deliveries = %d, want 1 (via relay)", got)
	}
	if got := line("interest"); got != 0 {
		t.Errorf("interest deliveries = %d, want 0 (mid node is not subscribed, so it never carries)", got)
	}
}
