package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"sos/internal/id"
	"sos/internal/metrics"
	"sos/internal/mobility"
	"sos/internal/socialgraph"
)

// GainesvilleConfig parameterizes the replay of the paper's §VI field
// study. Zero values select the paper's workload: ten users, seven days,
// 259 unique posts, 46 in-app subscription actions, interest-based
// routing, in an 11 km × 8 km area.
//
// The scenario models the three real-world mechanisms the paper's results
// hinge on:
//
//   - Social meetings. The testers were students who "were friends before
//     the field study and typically interacted during the school week"
//     (§VI-A): contacts arise from pairwise meetings and group gatherings
//     at shared venues, with heterogeneous per-pair rates and a weekend
//     slowdown.
//   - Foreground-only radios. Multipeer Connectivity only works while the
//     app is active, so each user has app-usage windows: sporadic checks,
//     a burst after posting, and social prompts when a co-present friend
//     posts. Deliveries require co-location plus overlapping activity —
//     which is why the paper saw mostly 1-hop deliveries (0.826): authors
//     are reliably active right after posting, forwarders rarely are.
//   - Sleep. Nodes are home and inactive at night (§VI-B: "node mobility
//     tends to become stationary for at least 5-8 hours a day").
type GainesvilleConfig struct {
	Seed         int64
	Days         int
	Posts        int
	InAppFollows int
	Scheme       string
	Range        float64
	Tick         time.Duration
	Start        time.Time
	// AttendProb is the probability a user shows up to a scheduled
	// meeting (default 0.85).
	AttendProb float64
	// MeetRate is the mean weekday meetings/day for a related pair
	// (default 0.45).
	MeetRate float64
	// RateSpread is the log-normal σ of per-pair rate heterogeneity
	// (default 1.0).
	RateSpread float64
	// GatheringProb is the per-weekday probability of a group gathering
	// (default 0.35).
	GatheringProb float64
	// WeekendFactor scales meeting rates on weekends (default 0.60).
	WeekendFactor float64
	// SocialPostProb is the chance a post is authored during one of the
	// author's meetings rather than at a random time (default 0.50).
	SocialPostProb float64
	// ChecksPerDay is the mean number of spontaneous app checks per user
	// per day (default 2.5).
	ChecksPerDay float64
	// MeetingCheckProb is the chance a user opens the app spontaneously
	// during a meeting (default 0.45).
	MeetingCheckProb float64
	// PromptProb is the chance a co-present friend opens the app when the
	// author posts at a meeting (default 0.60).
	PromptProb float64
	// RelayTTL bounds forwarding of other users' messages (default 24h;
	// negative disables eviction).
	RelayTTL time.Duration
	// Users overrides the node count for density ablations (default 10,
	// the deployment size; other counts use a scaled random relationship
	// graph instead of the deployment graph).
	Users int
}

// Gainesville is a fully-built §VI scenario.
type Gainesville struct {
	Config        Config
	Graph         *socialgraph.Graph
	Subscriptions []metrics.Subscription
	Handles       []string
}

// paperStart is a Monday, so the 7-day run covers a school week plus a
// weekend — the structure §VI-B's delay tail depends on.
var paperStart = time.Date(2017, 4, 3, 0, 0, 0, 0, time.UTC)

// NewGainesville builds the scenario.
func NewGainesville(cfg GainesvilleConfig) (*Gainesville, error) {
	applyDefaults(&cfg)
	if cfg.Users < 2 {
		return nil, fmt.Errorf("sim: %d users", cfg.Users)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))

	// Relationship graph: the canonical deployment digraph at n=10, or a
	// random digraph with matching density for ablation sizes.
	var graph *socialgraph.Graph
	if cfg.Users == socialgraph.DeploymentSize {
		graph = socialgraph.Deployment()
	} else {
		graph = randomGraph(cfg.Users, 0.64, rng)
	}

	handles := make([]string, cfg.Users)
	for i := range handles {
		handles[i] = fmt.Sprintf("user%02d", i+1)
	}

	world, err := buildSocialWorld(cfg, graph, rng)
	if err != nil {
		return nil, err
	}

	// Posts: weighted by social degree (hubs post more); many are
	// authored mid-meeting (people post while together), the rest at
	// random daytime instants.
	weights, total := postWeights(cfg.Users, graph)
	type postPlan struct {
		author int
		at     time.Time
		social int // index into world.attended[author], or -1
	}
	plans := make([]postPlan, 0, cfg.Posts)
	for p := 0; p < cfg.Posts; p++ {
		author := pickWeighted(weights, total, rng)
		attended := world.attended[author]
		if len(attended) > 0 && rng.Float64() < cfg.SocialPostProb {
			// Uniform over attended meetings: pair meetings vastly
			// outnumber gatherings, so most social posts happen in
			// one-on-one company — which is why the field study's
			// deliveries were overwhelmingly single-hop.
			mi := rng.Intn(len(attended))
			mtg := attended[mi]
			at := mtg.at.Add(time.Duration(rng.Float64() * float64(mtg.dur) * 0.85))
			plans = append(plans, postPlan{author: author, at: at, social: mi})
			continue
		}
		day := rng.Intn(cfg.Days)
		secOfDay := 8*3600 + rng.Float64()*15*3600 // 08:00–23:00
		at := cfg.Start.Add(time.Duration(day)*24*time.Hour + time.Duration(secOfDay)*time.Second)
		plans = append(plans, postPlan{author: author, at: at, social: -1})
	}

	// Activity windows: spontaneous checks, post bursts, social prompts.
	for u := 0; u < cfg.Users; u++ {
		world.addDailyChecks(u, cfg, rng)
	}
	var workload []Event
	for pi, plan := range plans {
		// The author is glued to the app around their own post.
		world.addWindow(plan.author, plan.at.Add(-time.Minute), plan.at.Add(12*time.Minute))
		if plan.social >= 0 {
			// Co-present friends get prompted to open the app.
			mtg := world.attended[plan.author][plan.social]
			for _, other := range mtg.with {
				if rng.Float64() < cfg.PromptProb {
					world.addWindow(other, plan.at, plan.at.Add(time.Duration(4+rng.Float64()*8)*time.Minute))
				}
			}
		}
		payload := fmt.Sprintf("post %03d by %s: studying at the library, anyone around? #%06x",
			pi, handles[plan.author], rng.Int31())
		workload = append(workload, Event{
			At: plan.at, Handle: handles[plan.author], Action: ActionPost, Payload: []byte(payload),
		})
	}

	// Split relationships: InAppFollows become scheduled follow actions
	// during the first ~36 hours; the rest pre-existed the study and are
	// seeded quietly (the testers "were friends before the field study").
	nodes := make([]NodeSpec, cfg.Users)
	for i, handle := range handles {
		nodes[i] = NodeSpec{
			Handle:   handle,
			Mobility: world.models[i],
			Activity: world.activityFunc(i),
		}
	}
	edges := graph.Edges()
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	inApp := cfg.InAppFollows
	if inApp > len(edges) {
		inApp = len(edges)
	}
	for k, e := range edges {
		follower, followee := handles[e[0]], handles[e[1]]
		if k < inApp {
			at := cfg.Start.Add(time.Duration(2+rng.Float64()*34) * time.Hour)
			workload = append(workload, Event{At: at, Handle: follower, Action: ActionFollow, Target: followee})
			// Following happens in the app: a small activity window.
			world.addWindow(e[0], at.Add(-time.Minute), at.Add(6*time.Minute))
		} else {
			nodes[e[0]].Follows = append(nodes[e[0]].Follows, followee)
		}
	}

	// Subscriptions for the Fig. 4d delivery-ratio series: every directed
	// relationship edge.
	subs := make([]metrics.Subscription, 0, len(edges))
	for _, e := range graph.Edges() {
		subs = append(subs, metrics.Subscription{
			Follower: id.NewUserID(handles[e[0]]),
			Followee: id.NewUserID(handles[e[1]]),
		})
	}

	return &Gainesville{
		Config: Config{
			Start:    cfg.Start,
			Duration: time.Duration(cfg.Days) * 24 * time.Hour,
			Tick:     cfg.Tick,
			Range:    cfg.Range,
			Scheme:   cfg.Scheme,
			RelayTTL: cfg.RelayTTL,
			Seed:     rng.Int63(),
			Nodes:    nodes,
			Workload: workload,
		},
		Graph:         graph,
		Subscriptions: subs,
		Handles:       handles,
	}, nil
}

// applyDefaults fills zero fields with the calibrated defaults.
func applyDefaults(cfg *GainesvilleConfig) {
	if cfg.Days == 0 {
		cfg.Days = 7
	}
	if cfg.Posts == 0 {
		cfg.Posts = 259
	}
	if cfg.InAppFollows == 0 {
		cfg.InAppFollows = 46
	}
	if cfg.Scheme == "" {
		cfg.Scheme = "interest"
	}
	if cfg.Range == 0 {
		cfg.Range = 35
	}
	if cfg.Tick == 0 {
		cfg.Tick = 30 * time.Second
	}
	if cfg.Start.IsZero() {
		cfg.Start = paperStart
	}
	if cfg.Users == 0 {
		cfg.Users = socialgraph.DeploymentSize
	}
	if cfg.AttendProb == 0 {
		cfg.AttendProb = 0.85
	}
	if cfg.MeetRate == 0 {
		cfg.MeetRate = 0.45
	}
	if cfg.RateSpread == 0 {
		cfg.RateSpread = 1.0
	}
	if cfg.GatheringProb == 0 {
		cfg.GatheringProb = 0.35
	}
	if cfg.WeekendFactor == 0 {
		cfg.WeekendFactor = 0.60
	}
	if cfg.SocialPostProb == 0 {
		cfg.SocialPostProb = 0.50
	}
	if cfg.ChecksPerDay == 0 {
		cfg.ChecksPerDay = 2.5
	}
	if cfg.MeetingCheckProb == 0 {
		cfg.MeetingCheckProb = 0.45
	}
	if cfg.PromptProb == 0 {
		cfg.PromptProb = 0.60
	}
	if cfg.RelayTTL == 0 {
		cfg.RelayTTL = 24 * time.Hour
	} else if cfg.RelayTTL < 0 {
		cfg.RelayTTL = 0
	}
}

// meeting is one co-location of two or more users at a venue.
type meeting struct {
	at    time.Time
	dur   time.Duration
	venue mobility.Point
	users []int
}

// attendedMeeting is a meeting one user actually attends, with the other
// attendees listed for prompt modelling.
type attendedMeeting struct {
	at    time.Time
	dur   time.Duration
	venue mobility.Point
	with  []int
}

// interval is a half-open activity window.
type interval struct{ start, end time.Time }

// socialWorld bundles the generated geography, itineraries, and activity.
type socialWorld struct {
	cfg      GainesvilleConfig
	models   []mobility.Model
	attended [][]attendedMeeting
	windows  [][]interval
}

// buildSocialWorld generates meetings, per-user movement traces, and the
// attended-meeting lists.
func buildSocialWorld(cfg GainesvilleConfig, graph *socialgraph.Graph, rng *rand.Rand) (*socialWorld, error) {
	n := cfg.Users
	area := mobility.Gainesville
	campus := mobility.Point{X: area.W * 0.45, Y: area.H * 0.5}
	venues := []mobility.Point{
		jitterPoint(campus, 300, rng),        // library
		jitterPoint(campus, 300, rng),        // food court
		jitterPoint(campus, 300, rng),        // courtyard
		{X: area.W * 0.65, Y: area.H * 0.68}, // downtown venue
		{X: area.W * 0.30, Y: area.H * 0.25}, // westside cafe
	}
	homes := make([]mobility.Point, n)
	for i := range homes {
		homes[i] = area.RandomPoint(rng)
	}
	und := graph.Undirected()

	// Pair meeting rates: log-normally heterogeneous around MeetRate,
	// mean-corrected so the average stays at MeetRate.
	type pair struct{ a, b int }
	rates := make(map[pair]float64)
	var pairs []pair
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if und.HasEdge(i, j) {
				p := pair{a: i, b: j}
				pairs = append(pairs, p)
				rates[p] = cfg.MeetRate * math.Exp(cfg.RateSpread*rng.NormFloat64()-cfg.RateSpread*cfg.RateSpread/2)
			}
		}
	}

	var meetings []meeting
	for day := 0; day < cfg.Days; day++ {
		midnight := cfg.Start.Add(time.Duration(day) * 24 * time.Hour)
		wd := midnight.Weekday()
		factor := 1.0
		if wd == time.Saturday || wd == time.Sunday {
			factor = cfg.WeekendFactor
		}
		// Pairwise meetings.
		for _, p := range pairs {
			rate := rates[p] * factor
			count := 0
			for rate > 0 {
				if rng.Float64() < math.Min(rate, 0.95) {
					count++
				}
				rate -= 0.95
			}
			for k := 0; k < count; k++ {
				if rng.Float64() > cfg.AttendProb*cfg.AttendProb {
					continue // one of them flaked
				}
				venue := venues[rng.Intn(len(venues))]
				if rng.Float64() < 0.35 { // at one of the pair's homes
					venue = homes[[2]int{p.a, p.b}[rng.Intn(2)]]
				}
				at := midnight.Add(time.Duration(9*3600+rng.Float64()*12*3600) * time.Second)
				meetings = append(meetings, meeting{
					at:    at,
					dur:   time.Duration(20+rng.Float64()*50) * time.Minute,
					venue: jitterPoint(venue, 5, rng),
					users: []int{p.a, p.b},
				})
			}
		}
		// Group gathering: a seed user draws a sample of their friends.
		if rng.Float64() < cfg.GatheringProb*factor {
			seed := rng.Intn(n)
			var friends []int
			for j := 0; j < n; j++ {
				if j != seed && und.HasEdge(seed, j) && rng.Float64() < 0.5 {
					friends = append(friends, j)
				}
			}
			if len(friends) > 3 {
				friends = friends[:3]
			}
			var present []int
			for _, u := range append([]int{seed}, friends...) {
				if rng.Float64() < cfg.AttendProb {
					present = append(present, u)
				}
			}
			if len(present) >= 2 {
				at := midnight.Add(time.Duration(18*3600+rng.Float64()*3*3600) * time.Second)
				meetings = append(meetings, meeting{
					at:    at,
					dur:   time.Duration(60+rng.Float64()*90) * time.Minute,
					venue: jitterPoint(venues[rng.Intn(len(venues))], 8, rng),
					users: present,
				})
			}
		}
	}

	// Assemble per-user waypoint traces and attended-meeting lists.
	perUser := make([][]meeting, n)
	for _, m := range meetings {
		for _, u := range m.users {
			perUser[u] = append(perUser[u], m)
		}
	}
	world := &socialWorld{
		cfg:      cfg,
		models:   make([]mobility.Model, n),
		attended: make([][]attendedMeeting, n),
		windows:  make([][]interval, n),
	}
	for u := 0; u < n; u++ {
		ms := perUser[u]
		sort.Slice(ms, func(i, j int) bool { return ms[i].at.Before(ms[j].at) })
		points := []mobility.Waypoint{{At: cfg.Start, Pos: homes[u]}}
		lastEnd := cfg.Start
		for _, m := range ms {
			// Conflicting meetings are skipped: a realistic no-show.
			if m.at.Before(lastEnd.Add(20 * time.Minute)) {
				continue
			}
			depart := m.at.Add(-15 * time.Minute)
			if depart.After(lastEnd) {
				points = append(points, mobility.Waypoint{At: depart, Pos: points[len(points)-1].Pos})
			}
			end := m.at.Add(m.dur)
			points = append(points,
				mobility.Waypoint{At: m.at, Pos: m.venue},
				mobility.Waypoint{At: end, Pos: m.venue},
				mobility.Waypoint{At: end.Add(25 * time.Minute), Pos: homes[u]},
			)
			lastEnd = end.Add(25 * time.Minute)

			var with []int
			for _, other := range m.users {
				if other != u {
					with = append(with, other)
				}
			}
			world.attended[u] = append(world.attended[u], attendedMeeting{
				at: m.at, dur: m.dur, venue: m.venue, with: with,
			})
		}
		points = append(points, mobility.Waypoint{
			At:  cfg.Start.Add(time.Duration(cfg.Days) * 24 * time.Hour),
			Pos: homes[u],
		})
		model, err := mobility.NewTrace(points)
		if err != nil {
			return nil, fmt.Errorf("sim: building trace for user %d: %w", u, err)
		}
		world.models[u] = model
	}
	return world, nil
}

// addWindow registers an app-activity window for a user.
func (w *socialWorld) addWindow(u int, start, end time.Time) {
	w.windows[u] = append(w.windows[u], interval{start: start, end: end})
}

// addDailyChecks adds each user's spontaneous app checks plus one check
// per attended meeting with moderate probability (friends showing each
// other the app).
func (w *socialWorld) addDailyChecks(u int, cfg GainesvilleConfig, rng *rand.Rand) {
	for day := 0; day < cfg.Days; day++ {
		midnight := cfg.Start.Add(time.Duration(day) * 24 * time.Hour)
		count := int(cfg.ChecksPerDay/2 + rng.Float64()*cfg.ChecksPerDay)
		for k := 0; k < count; k++ {
			at := midnight.Add(time.Duration(8*3600+rng.Float64()*15.5*3600) * time.Second)
			w.addWindow(u, at, at.Add(time.Duration(4+rng.Float64()*8)*time.Minute))
		}
	}
	for _, mtg := range w.attended[u] {
		if rng.Float64() < cfg.MeetingCheckProb {
			offset := time.Duration(rng.Float64() * float64(mtg.dur) * 0.8)
			at := mtg.at.Add(offset)
			w.addWindow(u, at, at.Add(time.Duration(4+rng.Float64()*8)*time.Minute))
		}
	}
}

// activityFunc compiles a user's windows into a fast membership test.
func (w *socialWorld) activityFunc(u int) func(time.Time) bool {
	ivs := make([]interval, len(w.windows[u]))
	copy(ivs, w.windows[u])
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].start.Before(ivs[j].start) })
	// Merge overlaps.
	merged := ivs[:0]
	for _, iv := range ivs {
		if len(merged) > 0 && !iv.start.After(merged[len(merged)-1].end) {
			if iv.end.After(merged[len(merged)-1].end) {
				merged[len(merged)-1].end = iv.end
			}
			continue
		}
		merged = append(merged, iv)
	}
	final := make([]interval, len(merged))
	copy(final, merged)
	return func(at time.Time) bool {
		idx := sort.Search(len(final), func(i int) bool { return final[i].start.After(at) }) - 1
		return idx >= 0 && !at.After(final[idx].end)
	}
}

// postWeights biases post volume toward socially-central users.
func postWeights(n int, graph *socialgraph.Graph) ([]float64, float64) {
	und := graph.Undirected()
	weights := make([]float64, n)
	total := 0.0
	for i := range weights {
		deg := 0
		for j := 0; j < n; j++ {
			if und.HasEdge(i, j) {
				deg++
			}
		}
		weights[i] = 1 + float64(deg)/4
		total += weights[i]
	}
	return weights, total
}

// randomGraph draws a strongly-social random digraph at the target
// density for node-count ablations: reciprocated edges are favored, as in
// the deployment graph.
func randomGraph(n int, density float64, rng *rand.Rand) *socialgraph.Graph {
	g := socialgraph.New(n)
	target := int(density * float64(n*(n-1)))
	added := 0
	for added < target {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j || g.HasEdge(i, j) {
			continue
		}
		if err := g.AddEdge(i, j); err != nil {
			continue
		}
		added++
		// Reciprocate 80% of the time, mirroring the deployment ratio.
		if added < target && !g.HasEdge(j, i) && rng.Float64() < 0.8 {
			if err := g.AddEdge(j, i); err == nil {
				added++
			}
		}
	}
	return g
}

// pickWeighted draws an index proportional to weights.
func pickWeighted(weights []float64, total float64, rng *rand.Rand) int {
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return i
		}
	}
	return len(weights) - 1
}

// jitterPoint draws a point within radius r of center.
func jitterPoint(center mobility.Point, r float64, rng *rand.Rand) mobility.Point {
	for {
		dx := (rng.Float64()*2 - 1) * r
		dy := (rng.Float64()*2 - 1) * r
		if dx*dx+dy*dy <= r*r {
			return mobility.Point{X: center.X + dx, Y: center.Y + dy}
		}
	}
}
