package sim

import (
	"testing"

	"sos/internal/metrics"
)

// TestGainesvilleHeadlineBands runs the full calibrated 7-day field-study
// replay and asserts the paper's headline shapes hold within bands. This
// is the regression test for the reproduction itself: if a change to any
// layer breaks the delivery dynamics, this fails.
func TestGainesvilleHeadlineBands(t *testing.T) {
	if testing.Short() {
		t.Skip("full 7-day replay; skipped in -short mode")
	}
	g, err := NewGainesville(GainesvilleConfig{Seed: 1})
	if err != nil {
		t.Fatalf("NewGainesville: %v", err)
	}
	s, err := New(g.Config)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	// Workload scalars are exact inputs.
	if got := res.Collector.CreatedCount(); got != 259 {
		t.Errorf("unique messages = %d, want 259", got)
	}
	if res.Follows != 46 {
		t.Errorf("in-app follows = %d, want 46", res.Follows)
	}

	// Paper: 0.826 of deliveries single-hop. Band: [0.70, 0.92].
	if share := res.Collector.OneHopShare(); share < 0.70 || share > 0.92 {
		t.Errorf("1-hop share = %.3f, want ≈ 0.826 (band 0.70–0.92)", share)
	}

	// Paper: 0.90 of delivered messages within 94 h. Band: ≥ 0.85.
	all := res.Collector.DelayCDF(metrics.AllHops)
	if got := all.At(94); got < 0.85 {
		t.Errorf("All CDF(94h) = %.2f, want ≥ 0.85", got)
	}
	// Knee near a day: between 0.30 and 0.70 delivered within 24 h.
	if got := all.At(24); got < 0.30 || got > 0.70 {
		t.Errorf("All CDF(24h) = %.2f, want in [0.30, 0.70]", got)
	}

	// A substantial minority of subscriptions achieve > 0.8 ratio, and a
	// long weak tail exists (paper Fig. 4d shape).
	ratios := res.Collector.DeliveryRatios(g.Subscriptions, metrics.AllHops)
	if len(ratios) != 58 {
		t.Fatalf("ratio points = %d, want 58 subscriptions", len(ratios))
	}
	strong := metrics.FractionAbove(ratios, 0.80)
	if strong < 0.10 || strong > 0.50 {
		t.Errorf("subs above 0.8 = %.2f, want ≈ 0.30 (band 0.10–0.50)", strong)
	}
	weak := 1 - metrics.FractionAbove(ratios, 0.50)
	if weak < 0.20 {
		t.Errorf("weak-subscription tail = %.2f, want ≥ 0.20", weak)
	}

	// Dissemination volume in the paper's order of magnitude.
	if d := res.Collector.Disseminations(); d < 450 || d > 1400 {
		t.Errorf("disseminations = %d, want ≈ 967 (band 450–1400)", d)
	}

	// The stack stayed healthy: no verification failures, and everything
	// that aborted was eventually recovered (deliveries exist).
	for handle, st := range res.NodeStats {
		if st.Message.VerifyFailures != 0 {
			t.Errorf("%s: %d verification failures", handle, st.Message.VerifyFailures)
		}
	}
}
