// Spatial contact indexing. The seed simulator detected radio contacts
// with an O(N²) pairwise sweep per tick, which collapses long before the
// thousand-node fleets the trace-driven scenarios run. ContactIndex is a
// uniform grid hash with cell size equal to the radio range: a node can
// only be in contact with nodes in its own or the eight neighboring
// cells, so each tick tests a handful of candidates per node instead of
// N-1. Per-tick cost is linear in active nodes plus occupied cells plus
// genuine near-pairs, and the index reuses all of its storage across
// ticks, so the steady state allocates nothing.
package sim

import (
	"math"
	"runtime"
	"sync"
	"time"

	"sos/internal/mobility"
)

// inContact is the single range predicate both the grid index and the
// pairwise reference sweep share, so the two detectors are exactly
// equivalent (no Hypot-vs-sqrt ULP divergence between paths).
func inContact(p, q mobility.Point, rangeM float64) bool {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx+dy*dy <= rangeM*rangeM
}

// IndexStats counts one sweep's work, for benchmarks and the scaling
// table in the README: Checks is the number of candidate distance tests
// the grid performed (the pairwise sweep distance-tests every active
// pair, Nactive·(Nactive-1)/2 per tick).
type IndexStats struct {
	Active        int // nodes inserted (app in foreground)
	OccupiedCells int // grid cells holding at least one active node
	Checks        int // candidate pair distance tests
	Pairs         int // pairs actually in contact range
}

// ContactIndex is a reusable uniform-grid spatial hash over node
// positions. It is not safe for concurrent use; the simulator owns one
// and sweeps it once per tick.
type ContactIndex struct {
	rangeM float64
	// heads maps a packed cell coordinate to the first node of the
	// cell's intrusive list; next[i] chains the rest. Both persist
	// across sweeps (clear keeps buckets), so steady-state sweeps do
	// not allocate.
	heads    map[uint64]int32
	next     []int32
	occupied []uint64
	stats    IndexStats
}

// NewContactIndex builds an index for the given radio range in meters.
// The cell size equals the range, the largest size that still confines
// every in-range pair to adjacent cells.
func NewContactIndex(rangeM float64) *ContactIndex {
	if rangeM <= 0 {
		rangeM = 35
	}
	return &ContactIndex{
		rangeM: rangeM,
		heads:  make(map[uint64]int32),
	}
}

// cellOf packs the grid coordinates of p into one map key. int32
// truncation is safe for any plausible plane: at a 35 m cell it covers
// ±75 billion km.
func (ix *ContactIndex) cellOf(p mobility.Point) uint64 {
	cx := int32(math.Floor(p.X / ix.rangeM))
	cy := int32(math.Floor(p.Y / ix.rangeM))
	return uint64(uint32(cx))<<32 | uint64(uint32(cy))
}

// Stats returns the most recent sweep's work counters.
func (ix *ContactIndex) Stats() IndexStats { return ix.stats }

// Sweep finds every pair of active nodes within radio range and calls fn
// once per pair with i < j. Inactive nodes are never inserted, so a
// sleeping fleet costs one flag test per node. Pair order is
// deterministic (a pure function of the input ordering), which the
// simulator relies on for bit-identical replays.
func (ix *ContactIndex) Sweep(positions []mobility.Point, active []bool, fn func(i, j int32)) {
	clear(ix.heads)
	ix.occupied = ix.occupied[:0]
	if cap(ix.next) < len(positions) {
		ix.next = make([]int32, len(positions))
	}
	next := ix.next[:len(positions)]
	ix.stats = IndexStats{}

	for i := range positions {
		if active != nil && !active[i] {
			continue
		}
		ix.stats.Active++
		key := ix.cellOf(positions[i])
		head, ok := ix.heads[key]
		if !ok {
			head = -1
			ix.occupied = append(ix.occupied, key)
		}
		next[i] = head
		ix.heads[key] = int32(i)
	}
	ix.stats.OccupiedCells = len(ix.occupied)

	// For each occupied cell, test pairs within the cell plus pairs
	// against four of the eight neighbors (east, south-west, south,
	// south-east). The other four directions are covered when the
	// neighbor cell is the one iterating, so every candidate pair is
	// tested exactly once.
	var forward = [4][2]int32{{1, 0}, {-1, 1}, {0, 1}, {1, 1}}
	for _, key := range ix.occupied {
		cx, cy := int32(uint32(key>>32)), int32(uint32(key))
		for i := ix.heads[key]; i >= 0; i = next[i] {
			// Within-cell pairs: each node against the nodes inserted
			// before it (the tail of its own chain).
			for j := next[i]; j >= 0; j = next[j] {
				ix.check(positions, i, j, fn)
			}
			for _, d := range forward {
				nkey := uint64(uint32(cx+d[0]))<<32 | uint64(uint32(cy+d[1]))
				nhead, ok := ix.heads[nkey]
				if !ok {
					continue
				}
				for j := nhead; j >= 0; j = next[j] {
					ix.check(positions, i, j, fn)
				}
			}
		}
	}
}

// check tests one candidate pair and reports it in (lo, hi) order.
func (ix *ContactIndex) check(positions []mobility.Point, i, j int32, fn func(i, j int32)) {
	ix.stats.Checks++
	if !inContact(positions[i], positions[j], ix.rangeM) {
		return
	}
	ix.stats.Pairs++
	if i > j {
		i, j = j, i
	}
	fn(i, j)
}

// PairwiseContacts is the reference O(N²) sweep the grid index replaced.
// It applies the identical range predicate, so the two must find exactly
// the same contact set — the equivalence test in grid_test.go holds the
// index to that. It remains the honest baseline for BenchmarkSimContacts.
func PairwiseContacts(positions []mobility.Point, active []bool, rangeM float64, fn func(i, j int32)) {
	for i := 0; i < len(positions); i++ {
		if active != nil && !active[i] {
			continue
		}
		for j := i + 1; j < len(positions); j++ {
			if active != nil && !active[j] {
				continue
			}
			if inContact(positions[i], positions[j], rangeM) {
				fn(int32(i), int32(j))
			}
		}
	}
}

// SamplePositions fills positions and active from the fleet's mobility
// models and activity functions at the given instant, sharding the work
// across CPUs: itineraries are immutable after construction and each
// index is written by exactly one goroutine, so the pass is both safe
// and bit-deterministic. Small fleets stay on the calling goroutine.
func (s *Sim) samplePositions(at time.Time) {
	n := len(s.nodes)
	shards := runtime.GOMAXPROCS(0)
	const minPerShard = 256
	if shards > n/minPerShard {
		shards = n / minPerShard
	}
	if shards <= 1 {
		s.sampleRange(at, 0, n)
		return
	}
	var wg sync.WaitGroup
	for sh := 0; sh < shards; sh++ {
		lo := n * sh / shards
		hi := n * (sh + 1) / shards
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.sampleRange(at, lo, hi)
		}()
	}
	wg.Wait()
}

// sampleRange fills one shard of the position/activity buffers. An
// inactive node's position is not computed at all — sleeping nodes cost
// one activity test per tick, nothing more.
func (s *Sim) sampleRange(at time.Time, lo, hi int) {
	for i := lo; i < hi; i++ {
		n := s.nodes[i]
		if !n.Active(at) {
			s.active[i] = false
			s.positions[i] = mobility.Point{}
			continue
		}
		s.active[i] = true
		s.positions[i] = n.Model.Position(at)
	}
}
