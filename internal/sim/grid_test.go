package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"sos/internal/metrics"
	"sos/internal/mobility"
)

// fleetPositions builds a 200-node random-waypoint fleet in a dense area
// (so real contacts occur every tick) and samples it at the given instant.
func fleetPositions(t testing.TB, n int, at time.Time) ([]mobility.Point, []bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(321))
	models := make([]mobility.Model, n)
	for i := range models {
		m, err := mobility.NewRandomWaypoint(mobility.RandomWaypointConfig{
			Area: mobility.Area{W: 800, H: 800}, Start: start, Duration: 24 * time.Hour,
		}, rand.New(rand.NewSource(rng.Int63())))
		if err != nil {
			t.Fatalf("NewRandomWaypoint: %v", err)
		}
		models[i] = m
	}
	positions := make([]mobility.Point, n)
	active := make([]bool, n)
	actRng := rand.New(rand.NewSource(int64(at.Unix())))
	for i, m := range models {
		positions[i] = m.Position(at)
		active[i] = actRng.Float64() < 0.8 // a fifth of the fleet sleeps
	}
	return positions, active
}

// TestGridMatchesPairwiseSweep is the equivalence gate the tentpole
// stands on: the grid index must find exactly the contact set the old
// O(N²) sweep found, on a 200-node fleet, across many ticks including
// boundary-straddling positions and sleeping nodes.
func TestGridMatchesPairwiseSweep(t *testing.T) {
	const n = 200
	const rangeM = 35.0
	ix := NewContactIndex(rangeM)
	totalPairs := 0
	for tick := 0; tick < 48; tick++ {
		at := start.Add(time.Duration(tick) * 30 * time.Minute)
		positions, active := fleetPositions(t, n, at)

		gridSet := make(map[[2]int32]bool)
		ix.Sweep(positions, active, func(i, j int32) {
			if gridSet[[2]int32{i, j}] {
				t.Fatalf("tick %d: grid reported pair (%d,%d) twice", tick, i, j)
			}
			gridSet[[2]int32{i, j}] = true
		})
		pairSet := make(map[[2]int32]bool)
		PairwiseContacts(positions, active, rangeM, func(i, j int32) {
			pairSet[[2]int32{i, j}] = true
		})

		for p := range pairSet {
			if !gridSet[p] {
				t.Errorf("tick %d: pairwise found (%d,%d), grid missed it (dist %f)",
					tick, p[0], p[1], positions[p[0]].DistanceTo(positions[p[1]]))
			}
		}
		for p := range gridSet {
			if !pairSet[p] {
				t.Errorf("tick %d: grid invented pair (%d,%d) (dist %f)",
					tick, p[0], p[1], positions[p[0]].DistanceTo(positions[p[1]]))
			}
		}
		totalPairs += len(pairSet)

		st := ix.Stats()
		if st.Checks >= n*(n-1)/2 {
			t.Errorf("tick %d: grid checked %d candidate pairs, no better than the %d pairwise tests",
				tick, st.Checks, n*(n-1)/2)
		}
	}
	if totalPairs == 0 {
		t.Fatal("scenario produced no contacts at all; the equivalence test is vacuous")
	}
}

// TestGridExactRangeBoundary pins the predicate at the cell boundary:
// pairs at exactly the radio range are contacts (the old sweep used <=),
// including when they land in adjacent cells.
func TestGridExactRangeBoundary(t *testing.T) {
	const rangeM = 35.0
	positions := []mobility.Point{
		{X: 0, Y: 0},
		{X: rangeM, Y: 0},            // exactly in range, adjacent cell
		{X: rangeM * 2.0001, Y: 0},   // just out of range of node 1
		{X: -rangeM * 0.5, Y: 0.001}, // in range of node 0, negative cell
	}
	var got [][2]int32
	NewContactIndex(rangeM).Sweep(positions, nil, func(i, j int32) {
		got = append(got, [2]int32{i, j})
	})
	var want [][2]int32
	PairwiseContacts(positions, nil, rangeM, func(i, j int32) {
		want = append(want, [2]int32{i, j})
	})
	if fmt.Sprint(got) != fmt.Sprint(want) && len(got) != len(want) {
		t.Fatalf("grid %v, pairwise %v", got, want)
	}
	found := false
	for _, p := range got {
		if p == [2]int32{0, 1} {
			found = true
		}
	}
	if !found {
		t.Errorf("pair at exactly range %f not detected: %v", rangeM, got)
	}
}

// TestSimDeterminismAtScale replays a 150-node random-waypoint fleet
// twice through the full stack and demands identical series — the grid
// index, the sharded position pass, and the link diff must all be
// order-stable.
func TestSimDeterminismAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node crypto fleet")
	}
	run := func() *Result {
		cfg := scaleConfig(t, 150, 45*time.Minute)
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a.Collector.Disseminations() != b.Collector.Disseminations() {
		t.Errorf("disseminations differ: %d vs %d", a.Collector.Disseminations(), b.Collector.Disseminations())
	}
	if got, want := len(a.Collector.Deliveries(metrics.AllHops)), len(b.Collector.Deliveries(metrics.AllHops)); got != want {
		t.Errorf("deliveries differ: %d vs %d", got, want)
	}
	if a.MediumStats.ContactsUp != b.MediumStats.ContactsUp || a.MediumStats.ContactsDown != b.MediumStats.ContactsDown {
		t.Errorf("contact churn differs: %+v vs %+v", a.MediumStats, b.MediumStats)
	}
	if a.MediumStats.ContactsUp == 0 {
		t.Error("scenario produced no contacts")
	}
}

// scaleConfig builds a dense random-waypoint fleet with a small post
// workload, every node following node 0.
func scaleConfig(t testing.TB, n int, dur time.Duration) Config {
	t.Helper()
	master := rand.New(rand.NewSource(77))
	nodes := make([]NodeSpec, n)
	for i := range nodes {
		m, err := mobility.NewRandomWaypoint(mobility.RandomWaypointConfig{
			Area: mobility.Area{W: 600, H: 600}, Start: start, Duration: dur + time.Hour,
			SpeedMin: 1, SpeedMax: 3,
		}, rand.New(rand.NewSource(master.Int63())))
		if err != nil {
			t.Fatalf("NewRandomWaypoint: %v", err)
		}
		nodes[i] = NodeSpec{Handle: fmt.Sprintf("n%03d", i), Mobility: m}
		if i > 0 {
			nodes[i].Follows = []string{"n000"}
		}
	}
	var workload []Event
	for p := 0; p < 5; p++ {
		workload = append(workload, Event{
			At:      start.Add(time.Duration(p+1) * 2 * time.Minute),
			Handle:  "n000",
			Action:  ActionPost,
			Payload: []byte(fmt.Sprintf("scale post %d", p)),
		})
	}
	return Config{
		Start: start, Duration: dur, Tick: 30 * time.Second, Range: 35,
		Scheme: "epidemic", Seed: 9, Nodes: nodes, Workload: workload,
	}
}

// TestSamplePositionsSharded forces the parallel position pass (this
// may be the only multi-core execution on a single-CPU CI box) and
// checks it fills exactly what the serial pass fills.
func TestSamplePositionsSharded(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)

	const n = 600 // > minPerShard × 2, so the pass genuinely shards
	cfg := scaleConfig(t, n, 10*time.Minute)
	// Make half the fleet sleepy so the inactive branch shards too.
	for i := range cfg.Nodes {
		if i%2 == 1 {
			cfg.Nodes[i].Activity = func(time.Time) bool { return false }
		}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	at := start.Add(7 * time.Minute)
	s.samplePositions(at)

	for i, node := range s.nodes {
		wantActive := i%2 == 0
		if s.active[i] != wantActive {
			t.Fatalf("node %d active = %v, want %v", i, s.active[i], wantActive)
		}
		want := mobility.Point{}
		if wantActive {
			want = node.Model.Position(at)
		}
		if s.positions[i] != want {
			t.Fatalf("node %d position = %v, want %v", i, s.positions[i], want)
		}
	}
}

// TestTraceDrivenContacts replays a hand-written encounter trace with no
// mobility at all: the medium must see exactly the scripted link
// transitions and the message must ride them.
func TestTraceDrivenContacts(t *testing.T) {
	contacts := []ContactEvent{
		{At: start.Add(2 * time.Minute), A: "alice", B: "bob", Up: true},
		{At: start.Add(10 * time.Minute), A: "alice", B: "bob", Up: false},
		{At: start.Add(20 * time.Minute), A: "bob", B: "carol", Up: true},
		{At: start.Add(28 * time.Minute), A: "bob", B: "carol", Up: false},
	}
	cfg := Config{
		Start:    start,
		Duration: 40 * time.Minute,
		Tick:     30 * time.Second,
		Scheme:   "epidemic",
		Seed:     3,
		Nodes: []NodeSpec{
			{Handle: "alice"}, // no mobility model: trace mode allows it
			{Handle: "bob"},
			{Handle: "carol", Follows: []string{"alice"}},
		},
		Workload: []Event{
			{At: start.Add(time.Minute), Handle: "alice", Action: ActionPost, Payload: []byte("ride the trace")},
		},
		Contacts: contacts,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.MediumStats.ContactsUp != 2 || res.MediumStats.ContactsDown != 2 {
		t.Errorf("contacts up/down = %d/%d, want 2/2 (the scripted transitions)",
			res.MediumStats.ContactsUp, res.MediumStats.ContactsDown)
	}
	// alice → bob during the first window, bob → carol during the
	// second: a two-hop store-and-forward delivery with no geometry.
	deliveries := res.Collector.Deliveries(metrics.AllHops)
	if len(deliveries) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(deliveries))
	}
	if deliveries[0].Hops != 2 {
		t.Errorf("hops = %d, want 2 (via bob's buffer)", deliveries[0].Hops)
	}
	if d := deliveries[0].Delay(); d < 18*time.Minute || d > 30*time.Minute {
		t.Errorf("delay = %v, want ≈ 19–27 min (the DTN wait for the second contact)", d)
	}
}

// TestTraceRespectsActivity: the trace scripts the radios, but churn
// (app activity) still gates the effective link — a sleeping node drops
// out of its scripted contact and rejoins on wake if still scripted.
func TestTraceRespectsActivity(t *testing.T) {
	sleepFrom, sleepTo := start.Add(4*time.Minute), start.Add(16*time.Minute)
	cfg := Config{
		Start:    start,
		Duration: 30 * time.Minute,
		Tick:     30 * time.Second,
		Scheme:   "epidemic",
		Seed:     4,
		Nodes: []NodeSpec{
			{Handle: "alice"},
			{Handle: "bob", Follows: []string{"alice"}, Activity: func(at time.Time) bool {
				return at.Before(sleepFrom) || !at.Before(sleepTo)
			}},
		},
		// One long scripted contact spanning bob's nap.
		Contacts: []ContactEvent{
			{At: start.Add(2 * time.Minute), A: "alice", B: "bob", Up: true},
			{At: start.Add(28 * time.Minute), A: "alice", B: "bob", Up: false},
		},
		Workload: []Event{
			// Posted while bob sleeps: deliverable only after he wakes.
			{At: start.Add(8 * time.Minute), Handle: "alice", Action: ActionPost, Payload: []byte("wake up")},
		},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The link must have cycled: up at 2m, cut when bob sleeps at the 4m
	// tick, re-established at the 16m tick, cut by the trace at 28m.
	if res.MediumStats.ContactsUp != 2 || res.MediumStats.ContactsDown != 2 {
		t.Errorf("contacts up/down = %d/%d, want 2/2 (sleep severs the scripted link)",
			res.MediumStats.ContactsUp, res.MediumStats.ContactsDown)
	}
	deliveries := res.Collector.Deliveries(metrics.AllHops)
	if len(deliveries) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(deliveries))
	}
	// Delivery happens after wake (16m), not at post time (8m).
	if d := deliveries[0].Delay(); d < 7*time.Minute {
		t.Errorf("delay = %v, want ≥ ~8m (bob was asleep when alice posted)", d)
	}
}

// TestEventsInPartialTailTick: a duration that is not a multiple of the
// tick must not drop events scheduled after the last whole tick.
func TestEventsInPartialTailTick(t *testing.T) {
	cfg := Config{
		Start:    start,
		Duration: 100 * time.Second, // ticks at 0/30/60/90; tail (90,100]
		Tick:     30 * time.Second,
		Scheme:   "epidemic",
		Seed:     6,
		Nodes: []NodeSpec{
			{Handle: "alice"},
			{Handle: "bob", Follows: []string{"alice"}},
		},
		Contacts: []ContactEvent{
			{At: start.Add(95 * time.Second), A: "alice", B: "bob", Up: true},
		},
		Workload: []Event{
			{At: start.Add(93 * time.Second), Handle: "alice", Action: ActionPost, Payload: []byte("tail post")},
		},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Posts != 1 {
		t.Errorf("posts = %d, want 1 (the tail post must execute)", res.Posts)
	}
	if res.MediumStats.ContactsUp != 1 {
		t.Errorf("contacts up = %d, want 1 (the tail contact must be applied)", res.MediumStats.ContactsUp)
	}
}

func TestTraceValidationInSim(t *testing.T) {
	cfg := Config{
		Start: start, Duration: time.Hour, Scheme: "epidemic", Seed: 1,
		Nodes: []NodeSpec{{Handle: "a"}, {Handle: "b"}},
		Contacts: []ContactEvent{
			{At: start, A: "a", B: "ghost", Up: true},
		},
	}
	if _, err := New(cfg); err == nil {
		t.Error("trace naming an unknown handle accepted")
	}
	cfg.Contacts = []ContactEvent{{At: start, A: "a", B: "a", Up: true}}
	if _, err := New(cfg); err == nil {
		t.Error("self-contact accepted")
	}
	// No contacts and no mobility: still an error.
	cfg.Contacts = nil
	if _, err := New(cfg); err == nil {
		t.Error("missing mobility accepted without a trace")
	}
}

func TestParseContactTraceCSV(t *testing.T) {
	input := `node,peer,op,at
# comment line
alice,bob,up,120
alice,bob,down,300.5
bob,carol,up,2017-04-03T01:00:00Z
`
	events, handles, err := ParseContactTrace(strings.NewReader(input), start)
	if err != nil {
		t.Fatalf("ParseContactTrace: %v", err)
	}
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	if got := events[0]; got.A != "alice" || got.B != "bob" || !got.Up || !got.At.Equal(start.Add(2*time.Minute)) {
		t.Errorf("event 0 = %+v", got)
	}
	if got := events[1]; got.Up || !got.At.Equal(start.Add(300*time.Second+500*time.Millisecond)) {
		t.Errorf("event 1 = %+v", got)
	}
	if got := events[2]; !got.At.Equal(start.Add(time.Hour)) {
		t.Errorf("event 2 at %v, want start+1h", got.At)
	}
	if fmt.Sprint(handles) != "[alice bob carol]" {
		t.Errorf("handles = %v", handles)
	}
}

func TestParseContactTraceJSONL(t *testing.T) {
	input := `{"node":"n1","peer":"n2","op":"up","at":60}
{"node":"n1","peer":"n2","op":"down","at":"2017-04-03T00:05:00Z"}
`
	events, handles, err := ParseContactTrace(strings.NewReader(input), start)
	if err != nil {
		t.Fatalf("ParseContactTrace: %v", err)
	}
	if len(events) != 2 || len(handles) != 2 {
		t.Fatalf("events/handles = %d/%d, want 2/2", len(events), len(handles))
	}
	if !events[1].At.Equal(start.Add(5 * time.Minute)) {
		t.Errorf("event 1 at %v", events[1].At)
	}
}

func TestParseContactTraceRejects(t *testing.T) {
	for name, input := range map[string]string{
		"empty":         "",
		"comments-only": "# nothing\n",
		"bad-op":        "a,b,sideways,10\n",
		"bad-time":      "a,b,up,notatime\n",
		"self-link":     "a,a,up,10\n",
		"short-row":     "a,b,up\n",
		"bad-json":      `{"node":"a","peer":"b","op":"up"}` + "\n",
		"negative-time": "a,b,up,-5\n",
	} {
		if _, _, err := ParseContactTrace(strings.NewReader(input), start); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestContactTraceSortsUnorderedInput: real encounter dumps are often
// grouped by pair, not by time; the parser must deliver chronological
// order.
func TestContactTraceSortsUnorderedInput(t *testing.T) {
	input := "a,b,up,500\na,b,down,600\nb,c,up,100\nb,c,down,200\n"
	events, _, err := ParseContactTrace(strings.NewReader(input), start)
	if err != nil {
		t.Fatalf("ParseContactTrace: %v", err)
	}
	for i := 1; i < len(events); i++ {
		if events[i].At.Before(events[i-1].At) {
			t.Fatalf("events out of order at %d", i)
		}
	}
}
