// Campus social: a miniature Gainesville. Three students use the
// AlleyOop Social app (the paper's overlay application) with
// interest-based routing: follows, a feed, follower notifications, and an
// end-to-end encrypted direct message relayed through a third device that
// cannot read it.
//
// Run with:
//
//	go run ./examples/campus-social
package main

import (
	"fmt"
	"log"
	"time"

	"sos"
	"sos/alleyoop"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	start := time.Date(2017, 4, 3, 8, 0, 0, 0, time.UTC)
	clk := sos.NewVirtualClock(start)
	ca, err := sos.NewCA("AlleyOop Root CA", clk)
	if err != nil {
		return err
	}
	cld := sos.NewCloud(ca, clk)
	medium := sos.NewSimMedium(clk)

	join := func(handle string) (*alleyoop.App, error) {
		return alleyoop.Join(alleyoop.Config{
			Cloud:    cld,
			Medium:   medium,
			Handle:   handle,
			PeerName: sos.PeerID(handle + "-phone"),
			Clock:    clk,
		})
	}
	maya, err := join("maya")
	if err != nil {
		return err
	}
	defer maya.Close()
	dev, err := join("dev")
	if err != nil {
		return err
	}
	defer dev.Close()
	rosa, err := join("rosa")
	if err != nil {
		return err
	}
	defer rosa.Close()

	// Social graph: the three friends follow each other. Under
	// interest-based routing only an author's subscribers request and
	// carry their messages, so rosa's direct message can reach maya via
	// dev only because both of them follow rosa.
	for _, f := range []struct {
		app    *alleyoop.App
		target string
	}{
		{dev, "maya"}, {dev, "rosa"}, {rosa, "maya"}, {rosa, "dev"}, {maya, "dev"}, {maya, "rosa"},
	} {
		if err := f.app.Follow(f.target); err != nil {
			return err
		}
	}

	pump := func(d time.Duration) {
		medium.RunUntil(clk.Now().Add(d))
		clk.Set(clk.Now().Add(d))
	}
	meet := func(a, b string, d time.Duration) {
		medium.SetLink(sos.PeerID(a+"-phone"), sos.PeerID(b+"-phone"), sos.Bluetooth)
		pump(d)
		medium.CutLink(sos.PeerID(a+"-phone"), sos.PeerID(b+"-phone"))
		pump(time.Second)
	}

	// Morning: maya posts before class; she runs into dev at the library.
	if _, err := maya.Post("study group at the library, 3pm"); err != nil {
		return err
	}
	fmt.Println("08:00  maya posts 'study group at the library, 3pm'")
	meet("maya", "dev", 30*time.Second)
	fmt.Printf("08:01  dev's feed after meeting maya: %v\n", feedTexts(dev))

	// Afternoon: dev (now a forwarder for maya) bumps into rosa — maya's
	// post reaches rosa two hops out, with maya's certificate attached.
	pump(6 * time.Hour)
	meet("dev", "rosa", 30*time.Second)
	item := rosa.Feed()[0]
	fmt.Printf("14:01  rosa's feed after meeting dev: %q (author %s, %d hops)\n",
		item.Text, item.AuthorHandle, item.Hops)

	// Rosa now holds maya's verified certificate — enough to send her an
	// end-to-end encrypted DM that dev can carry but never read.
	mayaCert, ok := rosa.CertOf(sos.NewUserID("maya"))
	if !ok {
		return fmt.Errorf("rosa has no certificate for maya")
	}
	if _, err := rosa.DirectTo(mayaCert, "count me in for the study group!"); err != nil {
		return err
	}
	fmt.Println("14:02  rosa sends maya an end-to-end encrypted DM via dev")

	meet("dev", "rosa", 30*time.Second) // dev picks the envelope up
	meet("maya", "dev", 30*time.Second) // and hands it to maya

	inbox := maya.Inbox()
	if len(inbox) == 0 {
		return fmt.Errorf("maya's inbox is empty")
	}
	fmt.Printf("15:00  maya's inbox: %q from %s\n", inbox[0].Text, inbox[0].FromHandle)
	fmt.Printf("       maya's followers so far: %v\n", maya.Followers())
	return nil
}

func feedTexts(app *alleyoop.App) []string {
	var out []string
	for _, item := range app.Feed() {
		out = append(out, item.Text)
	}
	return out
}
