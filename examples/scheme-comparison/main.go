// Scheme comparison: the modular routing layer in action. The identical
// two-day social workload runs once per routing scheme — epidemic,
// interest-based, spray-and-wait, PRoPHET — and the table shows the
// classic DTN trade-off: epidemic delivers the most at the highest
// transfer cost, interest-based delivers almost as much for far less, and
// the budgeted schemes sit in between.
//
// Run with:
//
//	go run ./examples/scheme-comparison
package main

import (
	"fmt"
	"log"

	"sos/internal/metrics"
	"sos/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("identical workload: 10 users, 2 days, 100 posts, deployment social graph")
	fmt.Printf("%-16s %12s %12s %12s %12s\n",
		"scheme", "deliveries", "1-hop share", "frames", "bytes(KiB)")

	for _, scheme := range []string{"epidemic", "interest", "spray-and-wait", "prophet"} {
		scenario, err := sim.NewGainesville(sim.GainesvilleConfig{
			Seed: 42, Days: 2, Posts: 100, InAppFollows: 20, Scheme: scheme,
		})
		if err != nil {
			return err
		}
		s, err := sim.New(scenario.Config)
		if err != nil {
			return err
		}
		res, err := s.Run()
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %12d %12.2f %12d %12.0f\n",
			scheme,
			len(res.Collector.Deliveries(metrics.AllHops)),
			res.Collector.OneHopShare(),
			res.MediumStats.FramesDelivered,
			float64(res.MediumStats.BytesDelivered)/1024,
		)
	}
	fmt.Println("\nschemes are hot-swappable at runtime: node.SetScheme(\"epidemic\")")
	return nil
}
