// Quickstart: the smallest complete SOS deployment. Two users bootstrap
// against a CA-backed cloud (the one-time infrastructure requirement),
// join a live in-process medium, and exchange a post over an
// authenticated, encrypted device-to-device link — no infrastructure
// involved after signup.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"sos"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One-time infrastructure: certificate authority + cloud signup.
	ca, err := sos.NewCA("Quickstart Root CA", nil)
	if err != nil {
		return err
	}
	cld := sos.NewCloud(ca, nil)

	aliceCreds, err := sos.Bootstrap(cld, "alice")
	if err != nil {
		return err
	}
	bobCreds, err := sos.Bootstrap(cld, "bob")
	if err != nil {
		return err
	}
	fmt.Printf("alice signed up: user id %s\n", aliceCreds.Ident.User)
	fmt.Printf("bob   signed up: user id %s\n", bobCreds.Ident.User)

	// From here on, no infrastructure: a shared device-to-device medium.
	medium := sos.NewMemMedium()

	delivered := make(chan *sos.Message, 1)
	alice, err := sos.NewNode(sos.NodeConfig{Creds: aliceCreds, Medium: medium})
	if err != nil {
		return err
	}
	defer alice.Close()

	bob, err := sos.NewNode(sos.NodeConfig{
		Creds:  bobCreds,
		Medium: medium,
		OnReceive: func(m *sos.Message, from sos.UserID) {
			delivered <- m
		},
	})
	if err != nil {
		return err
	}
	defer bob.Close()

	post, err := alice.Post([]byte("hello, opportunistic world"))
	if err != nil {
		return err
	}
	fmt.Printf("alice posted %s: %q\n", post.Ref(), post.Payload)

	select {
	case m := <-delivered:
		fmt.Printf("bob received %s after %d hop(s): %q\n", m.Ref(), m.Hops, m.Payload)
		fmt.Println("the message was certificate-verified and author-signed end to end")
	case <-time.After(10 * time.Second):
		return fmt.Errorf("delivery timed out")
	}
	return nil
}
