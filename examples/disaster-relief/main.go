// Disaster relief: the paper's motivating scenario. A storm has taken
// the cellular network down; a resident posts a status update that must
// reach an aid worker across town. No contact ever links them directly —
// the message is carried by a volunteer driving between the two sites
// (epidemic routing), exactly the "alley oop" the system is named for.
//
// The scenario runs on the deterministic virtual-time medium, so the
// printed delays are simulated hours, not wall time.
//
// Run with:
//
//	go run ./examples/disaster-relief
package main

import (
	"fmt"
	"log"
	"time"

	"sos"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	start := time.Date(2017, 9, 11, 6, 0, 0, 0, time.UTC) // morning after landfall
	clk := sos.NewVirtualClock(start)

	ca, err := sos.NewCA("Relief Network CA", clk)
	if err != nil {
		return err
	}
	cld := sos.NewCloud(ca, clk)
	medium := sos.NewSimMedium(clk)

	mkNode := func(handle string, sink *[]*sos.Message) (*sos.Node, error) {
		creds, err := sos.Bootstrap(cld, handle)
		if err != nil {
			return nil, err
		}
		return sos.NewNode(sos.NodeConfig{
			Creds:    creds,
			Medium:   medium,
			PeerName: sos.PeerID(handle),
			Scheme:   sos.SchemeEpidemic, // emergencies flood to everyone
			Clock:    clk,
			OnReceive: func(m *sos.Message, _ sos.UserID) {
				if sink != nil {
					*sink = append(*sink, m)
				}
			},
		})
	}

	var aidReceived []*sos.Message
	resident, err := mkNode("resident", nil)
	if err != nil {
		return err
	}
	defer resident.Close()
	volunteer, err := mkNode("volunteer", nil)
	if err != nil {
		return err
	}
	defer volunteer.Close()
	aidWorker, err := mkNode("aid-worker", &aidReceived)
	if err != nil {
		return err
	}
	defer aidWorker.Close()

	// The cloud goes down with the cell network: from now on the system
	// runs with zero infrastructure.
	cld.SetReachable(false)
	fmt.Println("06:00  cellular/internet infrastructure is DOWN")

	post, err := resident.Post([]byte("family of 4 safe on roof at 5th & Main, need water"))
	if err != nil {
		return err
	}
	fmt.Printf("06:00  resident posts: %q\n", post.Payload)

	pump := func(d time.Duration) {
		medium.RunUntil(clk.Now().Add(d))
		clk.Set(clk.Now().Add(d))
	}

	// 09:00 — a volunteer drives past the resident's street.
	pump(3 * time.Hour)
	medium.SetLink("resident", "volunteer", sos.Bluetooth)
	fmt.Println("09:00  volunteer drives past the resident (bluetooth contact)")
	pump(2 * time.Minute)
	medium.CutLink("resident", "volunteer")

	// 13:30 — the volunteer reaches the relief staging area.
	pump(4*time.Hour + 28*time.Minute)
	medium.SetLink("volunteer", "aid-worker", sos.PeerToPeerWiFi)
	fmt.Println("13:30  volunteer reaches the staging area (p2p wifi contact)")
	pump(2 * time.Minute)
	medium.CutLink("volunteer", "aid-worker")

	if len(aidReceived) == 0 {
		return fmt.Errorf("the message never reached the aid worker")
	}
	m := aidReceived[0]
	delay := clk.Now().Sub(m.Created)
	fmt.Printf("13:30  aid worker receives %s after %d hops, %.1f h after posting: %q\n",
		m.Ref(), m.Hops, delay.Hours(), m.Payload)

	// The aid worker can prove who wrote it, offline, via the carried
	// certificate chain.
	cert, err := aidWorker.Verifier().VerifyFor(m.CertDER, m.Author)
	if err != nil {
		return fmt.Errorf("provenance check failed: %w", err)
	}
	if err := m.VerifyWithKey(cert.Key); err != nil {
		return fmt.Errorf("signature check failed: %w", err)
	}
	fmt.Println("       provenance verified offline: certificate chain + author signature OK")
	return nil
}
