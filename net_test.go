package sos_test

import (
	"testing"
	"time"

	"sos"
)

// netTestConfig returns a loopback NetMedium configuration with test-speed
// beaconing.
func netTestConfig() sos.NetConfig {
	return sos.NetConfig{
		BeaconListen:   "127.0.0.1:0",
		ListenIP:       "127.0.0.1",
		BeaconInterval: 30 * time.Millisecond,
		LossTimeout:    300 * time.Millisecond,
	}
}

// TestNetMediumEndToEnd is the in vivo acceptance test: two complete SOS
// nodes — the daemon shape, one NetMedium instance each — run over real
// loopback sockets and disseminate a signed post with certificate-verified
// hops, under both epidemic and interest-based routing. Discovery happens
// via real UDP beacons; all session frames cross real TCP connections.
func TestNetMediumEndToEnd(t *testing.T) {
	for _, scheme := range []string{sos.SchemeEpidemic, sos.SchemeInterest} {
		t.Run(scheme, func(t *testing.T) {
			ca, err := sos.NewCA("In Vivo Root CA", nil)
			if err != nil {
				t.Fatalf("NewCA: %v", err)
			}
			cld := sos.NewCloud(ca, nil)

			aliceCreds, err := sos.Bootstrap(cld, "alice")
			if err != nil {
				t.Fatalf("Bootstrap(alice): %v", err)
			}
			bobCreds, err := sos.Bootstrap(cld, "bob")
			if err != nil {
				t.Fatalf("Bootstrap(bob): %v", err)
			}

			// Each node gets its own medium instance — the same shape as
			// two sosd processes — wired together by explicit unicast
			// beacon targets on loopback.
			mediumA, err := sos.NewNetMedium(netTestConfig())
			if err != nil {
				t.Fatalf("NewNetMedium(alice): %v", err)
			}
			alice, err := sos.NewNode(sos.NodeConfig{
				Creds:  aliceCreds,
				Medium: mediumA,
				Scheme: scheme,
			})
			if err != nil {
				t.Fatalf("NewNode(alice): %v", err)
			}
			defer alice.Close()

			cfgB := netTestConfig()
			cfgB.BeaconTargets = mediumA.BeaconAddrs()
			mediumB, err := sos.NewNetMedium(cfgB)
			if err != nil {
				t.Fatalf("NewNetMedium(bob): %v", err)
			}
			received := make(chan *sos.Message, 16)
			bob, err := sos.NewNode(sos.NodeConfig{
				Creds:  bobCreds,
				Medium: mediumB,
				Scheme: scheme,
				OnReceive: func(m *sos.Message, _ sos.UserID) {
					received <- m
				},
			})
			if err != nil {
				t.Fatalf("NewNode(bob): %v", err)
			}
			defer bob.Close()
			for _, addr := range mediumB.BeaconAddrs() {
				if err := mediumA.AddBeaconTarget(addr); err != nil {
					t.Fatalf("AddBeaconTarget: %v", err)
				}
			}

			// Interest-based routing only pulls messages from authors the
			// node subscribes to; epidemic pulls everything it lacks.
			if scheme == sos.SchemeInterest {
				bob.Subscribe(alice.User())
				if err := bob.Advertise(); err != nil {
					t.Fatalf("Advertise: %v", err)
				}
			}

			post, err := alice.Post([]byte("hello over real sockets"))
			if err != nil {
				t.Fatalf("Post: %v", err)
			}

			deadline := time.After(15 * time.Second)
			for {
				select {
				case m := <-received:
					if m.Ref() != post.Ref() {
						continue // e.g. a follow action arriving first
					}
					if string(m.Payload) != "hello over real sockets" {
						t.Fatalf("payload = %q", m.Payload)
					}
					if m.Author != alice.User() {
						t.Fatalf("author = %s, want %s", m.Author, alice.User())
					}
					// The hop must have been certificate-verified: both
					// sides completed the mutual handshake, rejecting
					// nothing.
					as, bs := alice.Stats(), bob.Stats()
					if as.Adhoc.HandshakesOK == 0 || bs.Adhoc.HandshakesOK == 0 {
						t.Fatalf("delivery without a completed handshake: alice=%+v bob=%+v", as.Adhoc, bs.Adhoc)
					}
					if as.Adhoc.CertRejections != 0 || bs.Adhoc.CertRejections != 0 {
						t.Fatalf("unexpected certificate rejections: alice=%+v bob=%+v", as.Adhoc, bs.Adhoc)
					}
					return
				case <-deadline:
					t.Fatalf("post not delivered over %s routing via real sockets", scheme)
				}
			}
		})
	}
}
