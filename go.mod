module sos

go 1.24
