// Package sos is the public API of the Secure Opportunistic Schemes (SOS)
// middleware — a from-scratch, stdlib-only reproduction of the system
// described in "In Vivo Evaluation of the Secure Opportunistic Schemes
// Middleware using a Delay Tolerant Social Network" (Baker, Starke,
// Hill-Jarrett, McNair; ICDCS 2017).
//
// SOS turns any application into a secure delay-tolerant network node:
// applications publish signed actions (posts, follows, direct messages),
// and the middleware disseminates them opportunistically over
// device-to-device encounters using pluggable routing schemes (epidemic,
// interest-based, spray-and-wait, PRoPHET), with PKI-backed identity,
// encrypted sessions, and end-to-end sealed payloads.
//
// A minimal deployment:
//
//	ca, _ := sos.NewCA("Example Root CA", nil)
//	cld := sos.NewCloud(ca, nil)
//	medium := sos.NewMemMedium()
//
//	creds, _ := sos.Bootstrap(cld, "alice")
//	alice, _ := sos.NewNode(sos.NodeConfig{Creds: creds, Medium: medium})
//	defer alice.Close()
//
//	alice.Post([]byte("hello, opportunistic world"))
//
// Peers on the same medium that follow alice (interest-based routing) or
// simply encounter her (epidemic routing) receive the post during
// contacts, with every hop certificate-verified — no infrastructure
// needed after Bootstrap.
package sos

import (
	"io"
	"time"

	"sos/internal/clock"
	"sos/internal/cloud"
	"sos/internal/core"
	"sos/internal/id"
	"sos/internal/mpc"
	"sos/internal/msg"
	"sos/internal/netmedium"
	"sos/internal/obs"
	"sos/internal/pki"
	"sos/internal/routing"
	"sos/internal/store"
)

// Identity and message types.
type (
	// UserID is the 10-byte unique user identifier advertised during peer
	// discovery.
	UserID = id.UserID
	// Identity is a user's long-term signing key pair.
	Identity = id.Identity
	// Message is one immutable, author-signed user action.
	Message = msg.Message
	// Ref uniquely identifies a message as (author, sequence number).
	Ref = msg.Ref
	// Kind enumerates user-action types.
	Kind = msg.Kind
)

// Storage types: the pluggable on-device database (paper §V: the
// middleware "saves the action to the local database on the mobile
// device" before dissemination).
type (
	// Store is a node's local message database engine. Two backends
	// ship: MemStore (volatile) and DiskStore (survives restarts); both
	// enforce buffer quotas with a pluggable EvictionPolicy.
	Store = store.Engine
	// MemStore is the in-memory storage engine.
	MemStore = store.Store
	// DiskStore is the durable storage engine: append-only log plus
	// snapshot compaction, crash-recoverable.
	DiskStore = store.Disk
	// StoreOptions tunes an engine: quotas, eviction policy, clock.
	StoreOptions = store.Options
	// StoreStats counts storage events (puts, evictions, occupancy).
	StoreStats = store.Stats
	// Eviction describes one dropped message.
	Eviction = store.Eviction
	// EvictionPolicy ranks eviction victims for a full buffer.
	EvictionPolicy = store.Policy
)

// Message kinds.
const (
	KindPost     = msg.KindPost
	KindFollow   = msg.KindFollow
	KindUnfollow = msg.KindUnfollow
	KindDirect   = msg.KindDirect
)

// Infrastructure types (used only during the one-time bootstrap and for
// online maintenance).
type (
	// CA is the certificate authority.
	CA = pki.CA
	// UserCert is a verified user certificate.
	UserCert = pki.UserCert
	// Verifier validates peer certificates on a device.
	Verifier = pki.Verifier
	// Cloud is the simulated online backend.
	Cloud = cloud.Service
	// Credentials is what a device holds after bootstrap.
	Credentials = cloud.Credentials
	// Account is a registered cloud account.
	Account = cloud.Account
)

// Medium types: the device-to-device substrate.
type (
	// Medium is a world devices can join.
	Medium = mpc.Medium
	// MemMedium is the live in-process medium.
	MemMedium = mpc.MemMedium
	// SimMedium is the deterministic virtual-time medium.
	SimMedium = mpc.SimMedium
	// NetMedium is the real-socket medium: UDP beacon discovery plus
	// per-technology TCP sessions, for running nodes across processes
	// and machines.
	NetMedium = netmedium.Medium
	// NetConfig tunes a NetMedium (beacon addresses, ports, timeouts).
	NetConfig = netmedium.Config
	// PeerID names a device on a medium.
	PeerID = mpc.PeerID
	// Technology is a radio technology (Bluetooth, p2p WiFi, infra WiFi).
	Technology = mpc.Technology
)

// Radio technologies.
const (
	Bluetooth          = mpc.Bluetooth
	PeerToPeerWiFi     = mpc.PeerToPeerWiFi
	InfrastructureWiFi = mpc.InfrastructureWiFi
)

// Clock types.
type (
	// Clock supplies time to the middleware.
	Clock = clock.Clock
	// VirtualClock is a manually-advanced clock for simulations.
	VirtualClock = clock.Virtual
)

// Routing types.
type (
	// RoutingScheme is one opportunistic routing protocol.
	RoutingScheme = routing.Scheme
	// RoutingOptions tunes scheme construction.
	RoutingOptions = routing.Options
	// SchemeFactory builds a custom scheme over a node's store view.
	SchemeFactory = routing.Factory
	// StoreView is the read-only store surface schemes consume.
	StoreView = routing.StoreView
)

// Built-in routing scheme names.
const (
	SchemeEpidemic     = routing.SchemeEpidemic
	SchemeInterest     = routing.SchemeInterest
	SchemeSprayAndWait = routing.SchemeSprayAndWait
	SchemeProphet      = routing.SchemeProphet
)

// Node types: a running middleware instance.
type (
	// Node is one application's SOS middleware instance.
	Node = core.Middleware
	// NodeConfig assembles a Node.
	NodeConfig = core.Config
	// NodeStats aggregates per-layer counters.
	NodeStats = core.Stats
	// SecurityConfig tunes the secure layer (NodeConfig.Security): the
	// persistent replay-store directory, session key-rotation periods,
	// and prekey lifetimes. See docs/SECURITY.md.
	SecurityConfig = core.SecurityConfig
	// Observer receives middleware lifecycle events (NodeConfig.Observer)
	// — the hook live telemetry attaches.
	Observer = core.Observer
)

// CombineObservers fans lifecycle events out to every non-nil observer.
func CombineObservers(observers ...Observer) Observer {
	return core.CombineObservers(observers...)
}

// NewNode wires up and starts a middleware instance.
func NewNode(cfg NodeConfig) (*Node, error) {
	return core.New(cfg)
}

// NewMemStore creates an in-memory storage engine for owner. Pass it in
// NodeConfig.Store to bound a node's buffer; a nil NodeConfig.Store gets
// an unbounded one automatically.
func NewMemStore(owner UserID, opts StoreOptions) *MemStore {
	return store.NewMemory(owner, opts)
}

// OpenDiskStore opens (or creates) the durable storage engine in dir,
// replaying its snapshot and append log so a restarted daemon resumes
// its message database, subscriptions, and eviction tombstones.
func OpenDiskStore(dir string, owner UserID, opts StoreOptions) (*DiskStore, error) {
	return store.OpenDisk(dir, owner, opts)
}

// PolicyByName builds an eviction policy from its registry name
// ("drop-oldest", "ttl", "size-quota", "subscription-priority"); ttl
// parameterizes the "ttl" policy. An empty name selects "ttl" when ttl >
// 0 and "drop-oldest" otherwise.
func PolicyByName(name string, ttl time.Duration) (EvictionPolicy, error) {
	return store.PolicyByName(name, ttl)
}

// NewCA creates a certificate authority with a fresh self-signed root.
// clk may be nil for wall time.
func NewCA(name string, clk Clock) (*CA, error) {
	if clk == nil {
		return pki.NewCA(name)
	}
	return pki.NewCA(name, pki.WithClock(clk.Now))
}

// NewCloud creates the simulated online backend fronting ca. clk may be
// nil for wall time.
func NewCloud(ca *CA, clk Clock) *Cloud {
	if clk == nil {
		return cloud.New(ca)
	}
	return cloud.New(ca, cloud.WithClock(clk.Now))
}

// Bootstrap performs the one-time infrastructure requirement for a new
// user: sign up, generate keys on-device, receive a certificate and the
// pinned CA root (paper Fig. 2a).
func Bootstrap(svc *Cloud, handle string) (*Credentials, error) {
	return cloud.Bootstrap(svc, handle, nil)
}

// BootstrapWithRand is Bootstrap with an explicit entropy source, for
// deterministic simulations.
func BootstrapWithRand(svc *Cloud, handle string, rng io.Reader) (*Credentials, error) {
	return cloud.Bootstrap(svc, handle, rng)
}

// NewMemMedium creates a live in-process medium for examples and tests.
func NewMemMedium() *MemMedium {
	return mpc.NewMemMedium()
}

// NewNetMedium creates the real-socket medium so a node runs in vivo:
// discovery beacons over UDP (broadcast, multicast, or static peers) and
// encrypted-session frames over per-technology TCP connections.
func NewNetMedium(cfg NetConfig) (*NetMedium, error) {
	return netmedium.New(cfg)
}

// SaveCredentials persists bootstrap credentials (identity key,
// certificate, pinned root) so a daemon can start without reaching the
// cloud; the file holds the private key and is written owner-only.
func SaveCredentials(creds *Credentials, path string) error {
	return cloud.SaveCredentials(creds, path)
}

// LoadCredentials reads credentials written by SaveCredentials,
// re-verifying the certificate against the bundled root.
func LoadCredentials(path string) (*Credentials, error) {
	return cloud.LoadCredentials(path)
}

// NewSimMedium creates a deterministic virtual-time medium driven by clk.
func NewSimMedium(clk *VirtualClock) *SimMedium {
	return mpc.NewSimMedium(clk)
}

// NewVirtualClock creates a virtual clock starting at start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return clock.NewVirtual(start)
}

// SystemClock returns the wall-time clock.
func SystemClock() Clock {
	return clock.System()
}

// NewUserID derives the stable user identifier for a handle, exactly as
// the cloud assigns them.
func NewUserID(handle string) UserID {
	return id.NewUserID(handle)
}

// ParseUserID decodes a UserID display string.
func ParseUserID(s string) (UserID, error) {
	return id.ParseUserID(s)
}

// Observability types: the per-node metrics registry, HTTP debug surface
// (/metrics, /healthz, /debug/trace, /debug/pprof), and the span tracer
// sosd serves in production.
type (
	// MetricsRegistry collects counters, gauges, and histograms and
	// renders them in Prometheus text exposition format.
	MetricsRegistry = obs.Registry
	// DebugServer is the per-node HTTP debug surface.
	DebugServer = obs.Server
	// DebugServerConfig assembles a DebugServer.
	DebugServerConfig = obs.ServerConfig
	// NodeMetrics names the layer sources RegisterNodeMetrics bridges.
	NodeMetrics = obs.NodeMetrics
	// Tracer is the per-node contact-session span recorder: a bounded
	// ring (a flight recorder — newest spans overwrite oldest) the debug
	// server dumps as Chrome trace_event JSON at /debug/trace. Pass one
	// in NodeConfig.Tracer and DebugServerConfig.Tracer.
	Tracer = obs.Tracer
)

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTracer creates a span tracer whose ring holds capacity records
// (a few thousand by default when capacity <= 0).
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// NewDebugServer binds and serves a node's debug surface.
func NewDebugServer(cfg DebugServerConfig) (*DebugServer, error) { return obs.NewServer(cfg) }

// RegisterNodeMetrics bridges a node's layer statistics into a registry
// at scrape time; see the internal obs package for the metric catalog.
func RegisterNodeMetrics(reg *MetricsRegistry, nm NodeMetrics) { obs.RegisterNodeMetrics(reg, nm) }
