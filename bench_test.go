// Benchmarks regenerating every table and figure of the paper's
// evaluation (§VI, Fig. 4a–4d), plus ablations over the design choices
// DESIGN.md calls out and micro-benchmarks of the security-critical hot
// paths. Figure benchmarks run the complete in-silico field study and
// report the paper's quantities via b.ReportMetric, so
//
//	go test -bench=Fig4 -benchtime=1x
//
// prints the measured series next to wall-clock cost. EXPERIMENTS.md
// records paper-vs-measured for each.
package sos_test

import (
	"crypto/rand"
	"fmt"
	"testing"
	"time"

	"sos"
	"sos/internal/id"
	"sos/internal/lab"
	"sos/internal/metrics"
	"sos/internal/msg"
	"sos/internal/secure"
	"sos/internal/sim"
	"sos/internal/socialgraph"
	"sos/internal/store"
	"sos/internal/wire"
)

// runGainesville executes the §VI replay once and returns the results.
func runGainesville(b *testing.B, cfg sim.GainesvilleConfig) (*sim.Result, *sim.Gainesville) {
	b.Helper()
	scenario, err := sim.NewGainesville(cfg)
	if err != nil {
		b.Fatalf("NewGainesville: %v", err)
	}
	s, err := sim.New(scenario.Config)
	if err != nil {
		b.Fatalf("sim.New: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		b.Fatalf("Run: %v", err)
	}
	return res, scenario
}

// BenchmarkFig4a_SocialGraph regenerates the §VI-A social-relationship
// statistics (Fig. 4a): density 0.64, average path length 1.3, diameter
// 2, radius 1, transitivity 0.80.
func BenchmarkFig4a_SocialGraph(b *testing.B) {
	var stats socialgraph.Stats
	for i := 0; i < b.N; i++ {
		stats = socialgraph.ComputeStats(socialgraph.Deployment())
	}
	b.ReportMetric(stats.Density, "density")
	b.ReportMetric(stats.AvgPathLength, "avg-path")
	b.ReportMetric(float64(stats.Diameter), "diameter")
	b.ReportMetric(float64(stats.Radius), "radius")
	b.ReportMetric(stats.Transitivity, "transitivity")
}

// BenchmarkFig4b_ActivityMap regenerates the Fig. 4b map data: message
// generation and dissemination events across the 11 km × 8 km area.
func BenchmarkFig4b_ActivityMap(b *testing.B) {
	var created, passed, contacts int
	for i := 0; i < b.N; i++ {
		res, _ := runGainesville(b, sim.GainesvilleConfig{Seed: 1})
		created = len(res.Recorder.Events(1))
		passed = len(res.Recorder.Events(2))
		contacts = res.Recorder.ContactCount()
	}
	b.ReportMetric(float64(created), "gen-events")
	b.ReportMetric(float64(passed), "diss-events")
	b.ReportMetric(float64(contacts), "contacts")
}

// BenchmarkFig4c_DelayCDF regenerates the Fig. 4c delay CDFs. Paper:
// All 0.43 ≤ 24 h and 0.90 ≤ 94 h; 1-hop 0.44 ≤ 24 h and 0.92 ≤ 94 h.
func BenchmarkFig4c_DelayCDF(b *testing.B) {
	var all24, all94, one24, one94 float64
	for i := 0; i < b.N; i++ {
		res, _ := runGainesville(b, sim.GainesvilleConfig{Seed: 1})
		all := res.Collector.DelayCDF(metrics.AllHops)
		one := res.Collector.DelayCDF(metrics.OneHop)
		all24, all94 = all.At(24), all.At(94)
		one24, one94 = one.At(24), one.At(94)
	}
	b.ReportMetric(all24, "all-cdf-24h")
	b.ReportMetric(all94, "all-cdf-94h")
	b.ReportMetric(one24, "1hop-cdf-24h")
	b.ReportMetric(one94, "1hop-cdf-94h")
}

// BenchmarkFig4d_DeliveryRatio regenerates the Fig. 4d per-subscription
// delivery ratios. Paper: 0.30 of subscriptions > 0.80 and 0.50 > 0.70
// (All); 0.25 ≥ 0.80 (1-hop); 0.826 of deliveries in one hop.
func BenchmarkFig4d_DeliveryRatio(b *testing.B) {
	var above80, above70, one80, oneHopShare, disseminations float64
	for i := 0; i < b.N; i++ {
		res, scenario := runGainesville(b, sim.GainesvilleConfig{Seed: 1})
		ratiosAll := res.Collector.DeliveryRatios(scenario.Subscriptions, metrics.AllHops)
		ratiosOne := res.Collector.DeliveryRatios(scenario.Subscriptions, metrics.OneHop)
		above80 = metrics.FractionAbove(ratiosAll, 0.80)
		above70 = metrics.FractionAbove(ratiosAll, 0.70)
		one80 = metrics.FractionAtLeast(ratiosOne, 0.80)
		oneHopShare = res.Collector.OneHopShare()
		disseminations = float64(res.Collector.Disseminations())
	}
	b.ReportMetric(above80, "subs-above-0.8")
	b.ReportMetric(above70, "subs-above-0.7")
	b.ReportMetric(one80, "1hop-subs-at-0.8")
	b.ReportMetric(oneHopShare, "1hop-share")
	b.ReportMetric(disseminations, "disseminations")
}

// BenchmarkAblationScheme compares the four routing schemes on an
// identical 3-day workload: deliveries achieved and transfer overhead.
func BenchmarkAblationScheme(b *testing.B) {
	for _, scheme := range []string{"epidemic", "interest", "spray-and-wait", "prophet"} {
		b.Run(scheme, func(b *testing.B) {
			var delivered, frames float64
			for i := 0; i < b.N; i++ {
				res, _ := runGainesville(b, sim.GainesvilleConfig{
					Seed: 7, Days: 3, Posts: 100, InAppFollows: 20, Scheme: scheme,
				})
				delivered = float64(len(res.Collector.Deliveries(metrics.AllHops)))
				frames = float64(res.MediumStats.FramesDelivered)
			}
			b.ReportMetric(delivered, "deliveries")
			b.ReportMetric(frames, "frames")
		})
	}
}

// BenchmarkAblationDensity explores the paper's closing question —
// behaviour "at higher densities" — by scaling the population.
func BenchmarkAblationDensity(b *testing.B) {
	for _, users := range []int{10, 20, 30} {
		b.Run(fmt.Sprintf("users=%d", users), func(b *testing.B) {
			var delivered, oneHop float64
			for i := 0; i < b.N; i++ {
				res, _ := runGainesville(b, sim.GainesvilleConfig{
					Seed: 7, Days: 2, Posts: 80, InAppFollows: 20, Users: users,
				})
				delivered = float64(len(res.Collector.Deliveries(metrics.AllHops)))
				oneHop = res.Collector.OneHopShare()
			}
			b.ReportMetric(delivered, "deliveries")
			b.ReportMetric(oneHop, "1hop-share")
		})
	}
}

// BenchmarkAblationRelayTTL measures the forwarder buffer policy's effect
// on hop mix and overhead (DESIGN.md substitution note).
func BenchmarkAblationRelayTTL(b *testing.B) {
	for _, ttl := range []time.Duration{12 * time.Hour, 24 * time.Hour, -1} {
		name := "unlimited"
		if ttl > 0 {
			name = ttl.String()
		}
		b.Run(name, func(b *testing.B) {
			var oneHop, delivered float64
			for i := 0; i < b.N; i++ {
				res, _ := runGainesville(b, sim.GainesvilleConfig{
					Seed: 7, Days: 3, Posts: 100, InAppFollows: 20, RelayTTL: ttl,
				})
				oneHop = res.Collector.OneHopShare()
				delivered = float64(len(res.Collector.Deliveries(metrics.AllHops)))
			}
			b.ReportMetric(oneHop, "1hop-share")
			b.ReportMetric(delivered, "deliveries")
		})
	}
}

// --- micro-benchmarks of the hot paths ---

// BenchmarkSessionSealOpen measures per-frame AEAD cost on the D2D path.
func BenchmarkSessionSealOpen(b *testing.B) {
	aliceIdent, _ := id.NewIdentity(id.NewUserID("alice"), rand.Reader)
	bobIdent, _ := id.NewIdentity(id.NewUserID("bob"), rand.Reader)
	sa, err := secure.NewSession(aliceIdent.Key, bobIdent.Public(), []byte("ctx"))
	if err != nil {
		b.Fatal(err)
	}
	sb, err := secure.NewSession(bobIdent.Key, aliceIdent.Public(), []byte("ctx"))
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame, err := sa.Seal(payload, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sb.Open(frame, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(payload)))
}

// BenchmarkSessionEstablish measures ECDH + HKDF session setup (both
// directions of one handshake).
func BenchmarkSessionEstablish(b *testing.B) {
	aliceIdent, _ := id.NewIdentity(id.NewUserID("alice"), rand.Reader)
	bobIdent, _ := id.NewIdentity(id.NewUserID("bob"), rand.Reader)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := secure.NewSession(aliceIdent.Key, bobIdent.Public(), []byte("ctx")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMessageSignVerify measures the author-signature path every
// relayed message pays.
func BenchmarkMessageSignVerify(b *testing.B) {
	ident, _ := id.NewIdentity(id.NewUserID("alice"), rand.Reader)
	m := &msg.Message{
		Author: ident.User, Seq: 1, Kind: msg.KindPost,
		Created: time.Now(), Payload: make([]byte, 256),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Sign(ident); err != nil {
			b.Fatal(err)
		}
		if err := m.VerifyWithKey(ident.Public()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnvelopeSealOpen measures end-to-end sealed direct messages.
func BenchmarkEnvelopeSealOpen(b *testing.B) {
	sender, _ := id.NewIdentity(id.NewUserID("alice"), rand.Reader)
	recipient, _ := id.NewIdentity(id.NewUserID("bob"), rand.Reader)
	payload := make([]byte, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, err := secure.SealEnvelope(nil, recipient.Public(), sender, payload)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := secure.OpenEnvelope(recipient.Key, sender.Public(), env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireRoundTrip measures frame codec throughput for a
// representative batch on the pooled encode path the contact hot path
// uses: AppendEncode into a reused buffer, decode with batch messages
// aliasing the input.
func BenchmarkWireRoundTrip(b *testing.B) {
	author := id.NewUserID("alice")
	batch := &wire.Batch{}
	for seq := uint64(1); seq <= 16; seq++ {
		batch.Msgs = append(batch.Msgs, &msg.Message{
			Author: author, Seq: seq, Kind: msg.KindPost,
			Created: time.Unix(1491472800, 0), Payload: make([]byte, 200),
			Sig: make([]byte, 70), CertDER: make([]byte, 500),
		})
	}
	buf := wire.GetBuffer()
	defer buf.Free()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := wire.AppendEncode(buf.B[:0], batch)
		if err != nil {
			b.Fatal(err)
		}
		buf.B = enc
		if _, err := wire.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContactThroughput measures messages synced per contact-second
// between two live nodes whose stores have seen 1k/10k/100k authors — the
// §VI-bounding quantity the delta-sync plane holds flat as the summary
// dictionary grows. Run with -benchtime=1x: each iteration is already a
// complete measured contact (the lab harness does its own averaging over
// the posts in the contact).
func BenchmarkContactThroughput(b *testing.B) {
	for _, authors := range []int{1_000, 10_000, 100_000} {
		posts := 200
		if authors >= 100_000 {
			posts = 100 // preload dominates; keep the total bounded
		}
		b.Run(fmt.Sprintf("authors=%d", authors), func(b *testing.B) {
			var res lab.ContactResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = lab.RunContact(lab.ContactConfig{Authors: authors, Posts: posts})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.MsgsPerSec, "msgs/contact-sec")
			b.ReportMetric(res.AllocsPerMsg, "allocs/msg")
			b.ReportMetric(res.BytesPerMsg, "B/msg")
		})
	}
}

// BenchmarkSimContacts measures per-tick contact detection — the
// in-silico scaling bottleneck the spatial grid index removed — at
// 100/1k/5k nodes under constant fleet density, grid vs the old O(N²)
// pairwise sweep. ns/op is the cost of one tick; checks/tick is the
// machine-independent candidate-pair count sosbench gates against
// BENCH_baseline.json (pairwise distance-tests every active pair each
// tick, the grid a near-constant handful per node, so per-tick cost
// grows ~linearly in occupied cells).
func BenchmarkSimContacts(b *testing.B) {
	const samples = 32
	for _, nodes := range []int{100, 1_000, 5_000} {
		fleet := sim.ContactBenchFleet(nodes, samples, 1)
		b.Run(fmt.Sprintf("nodes=%d/grid", nodes), func(b *testing.B) {
			ix := sim.NewContactIndex(fleet.RangeM)
			pairs, checks, cells := 0, 0, 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := i % samples
				ix.Sweep(fleet.Positions[t], fleet.Active[t], func(_, _ int32) {})
				st := ix.Stats()
				pairs += st.Pairs
				checks += st.Checks
				cells += st.OccupiedCells
			}
			b.ReportMetric(float64(checks)/float64(b.N), "checks/tick")
			b.ReportMetric(float64(pairs)/float64(b.N), "pairs/tick")
			b.ReportMetric(float64(cells)/float64(b.N), "cells/tick")
		})
		b.Run(fmt.Sprintf("nodes=%d/pairwise", nodes), func(b *testing.B) {
			// The sweep distance-tests every active pair: count them per
			// sample up front so the metric matches the work actually done
			// (inactive nodes are skipped before the test).
			sampleChecks := make([]int, samples)
			for t := range sampleChecks {
				act := 0
				for _, a := range fleet.Active[t] {
					if a {
						act++
					}
				}
				sampleChecks[t] = act * (act - 1) / 2
			}
			pairs, checks := 0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := i % samples
				checks += sampleChecks[t]
				sim.PairwiseContacts(fleet.Positions[t], fleet.Active[t], fleet.RangeM, func(_, _ int32) {
					pairs++
				})
			}
			b.ReportMetric(float64(pairs)/float64(b.N), "pairs/tick")
			b.ReportMetric(float64(checks)/float64(b.N), "checks/tick")
		})
	}
}

// benchAuthors preloads a store with the large-population shape the
// storage refactor targets: 10k authors, sparse high sequence numbers.
func benchAuthors(b *testing.B, st *store.Store, authors int) []id.UserID {
	b.Helper()
	ids := make([]id.UserID, authors)
	for a := 0; a < authors; a++ {
		ids[a] = id.NewUserID(fmt.Sprintf("author%05d", a))
		// Two sparse seqs per author, far apart, so the per-author maps
		// exercise the gap-walking paths rather than dense ranges.
		for _, seq := range []uint64{uint64(a)%7 + 1, uint64(a)%7 + 1000} {
			if _, err := st.Put(&msg.Message{
				Author: ids[a], Seq: seq, Kind: msg.KindPost, Created: time.Unix(1491472800, 0),
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	return ids
}

// BenchmarkStoreSummary measures the advertisement-summary path that runs
// on every beacon refresh, at 10k authors. The seed rebuilt the whole
// UserID → seq dictionary per call (O(authors) per beacon); the engine
// now maintains it incrementally and hands out a cached copy-on-write
// snapshot, so this is O(1) per call.
func BenchmarkStoreSummary(b *testing.B) {
	st := store.New(id.NewUserID("self"))
	benchAuthors(b, st, 10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(st.Summary()) != 10_000 {
			b.Fatal("bad summary")
		}
	}
}

// BenchmarkStorePut measures the insert path at 10k resident authors:
// index insert plus the O(1) incremental summary update.
func BenchmarkStorePut(b *testing.B) {
	st := store.New(id.NewUserID("self"))
	ids := benchAuthors(b, st, 10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		author := ids[i%len(ids)]
		if _, err := st.Put(&msg.Message{
			Author: author, Seq: uint64(2000 + i), Kind: msg.KindPost,
			Created: time.Unix(1491472800, 0),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreMissing measures the advertisement-response planning path
// with sparse, large sequence numbers. The seed scanned every seq in
// [1, upto] (O(upto) per advertisement); the engine now gap-walks the
// held set, so a sparse author with seq up to 1000 costs what it holds.
func BenchmarkStoreMissing(b *testing.B) {
	st := store.New(id.NewUserID("self"))
	author := id.NewUserID("sparse-author")
	for seq := uint64(1); seq <= 1000; seq += 97 {
		if _, err := st.Put(&msg.Message{
			Author: author, Seq: seq, Kind: msg.KindPost, Created: time.Unix(1491472800, 0),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := st.Missing(author, 1000); len(got) == 0 {
			b.Fatal("bad missing set")
		}
	}
}

// BenchmarkStoreBufferPressure runs the constrained-device workload the
// in-vivo study could not explore: a finite per-node quota on the ferry
// topology, epidemic vs. interest. Epidemic floods every buffer it meets
// and pays for it in evictions; interest carries only subscribed cargo
// and keeps more of what matters.
func BenchmarkStoreBufferPressure(b *testing.B) {
	for _, scheme := range []string{"epidemic", "interest"} {
		b.Run(scheme, func(b *testing.B) {
			var delivered, evictions, trackedDrops float64
			for i := 0; i < b.N; i++ {
				bp, err := sim.NewBufferPressure(sim.BufferPressureConfig{
					Seed: 11, Scheme: scheme, Quota: 12, Posts: 60,
				})
				if err != nil {
					b.Fatal(err)
				}
				s, err := sim.New(bp.Config)
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.Run()
				if err != nil {
					b.Fatal(err)
				}
				delivered = float64(len(res.Collector.Deliveries(metrics.AllHops)))
				evictions = float64(res.Collector.Evictions())
				trackedDrops = float64(res.Collector.TrackedEvictions())
			}
			b.ReportMetric(delivered, "deliveries")
			b.ReportMetric(evictions, "evictions")
			b.ReportMetric(trackedDrops, "tracked-drops")
		})
	}
}

// BenchmarkLiveDelivery measures the complete live path end to end: two
// fresh nodes join an in-process medium, authenticate (certificate
// handshake, transcript signatures, session keys), exchange summaries,
// and deliver one signed post.
func BenchmarkLiveDelivery(b *testing.B) {
	ca, err := sos.NewCA("bench-root", nil)
	if err != nil {
		b.Fatal(err)
	}
	cld := sos.NewCloud(ca, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		medium := sos.NewMemMedium()
		aliceCreds, err := sos.Bootstrap(cld, fmt.Sprintf("alice-%d", i))
		if err != nil {
			b.Fatal(err)
		}
		bobCreds, err := sos.Bootstrap(cld, fmt.Sprintf("bob-%d", i))
		if err != nil {
			b.Fatal(err)
		}
		got := make(chan struct{})
		alice, err := sos.NewNode(sos.NodeConfig{Creds: aliceCreds, Medium: medium})
		if err != nil {
			b.Fatal(err)
		}
		bob, err := sos.NewNode(sos.NodeConfig{
			Creds:  bobCreds,
			Medium: medium,
			OnReceive: func(*sos.Message, sos.UserID) {
				select {
				case got <- struct{}{}:
				default:
				}
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := alice.Post([]byte("bench post")); err != nil {
			b.Fatal(err)
		}
		select {
		case <-got:
		case <-time.After(10 * time.Second):
			b.Fatal("delivery timeout")
		}
		alice.Close()
		bob.Close()
	}
}
