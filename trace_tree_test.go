package sos_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"sos"
)

// TestContactTraceTree100kAuthors is the flight-recorder acceptance test:
// a first contact between two nodes whose stores have seen 100k authors
// must leave a complete contact-session span tree in /debug/trace — the
// handshake, the chunked full-summary stream (~25 chunks at 4096 entries
// each), and the steady-state delta rounds that follow, all on the one
// timeline track named after the peer.
func TestContactTraceTree100kAuthors(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-author contact is a long test")
	}
	const authors = 100_000

	ca, err := sos.NewCA("Trace Root CA", nil)
	if err != nil {
		t.Fatal(err)
	}
	cld := sos.NewCloud(ca, nil)
	aliceCreds, err := sos.Bootstrap(cld, "alice")
	if err != nil {
		t.Fatal(err)
	}
	bobCreds, err := sos.Bootstrap(cld, "bob")
	if err != nil {
		t.Fatal(err)
	}
	medium := sos.NewMemMedium()

	// Identical 100k-author histories: the first contact has no payload
	// to move, so the trace isolates the summary machinery — exactly the
	// regime where the chunked stream replaces a single giant frame.
	aliceStore := sos.NewMemStore(aliceCreds.Ident.User, sos.StoreOptions{})
	bobStore := sos.NewMemStore(bobCreds.Ident.User, sos.StoreOptions{})
	created := time.Unix(1491472800, 0).UTC()
	for i := 0; i < authors; i++ {
		m := &sos.Message{
			Author:  sos.NewUserID(fmt.Sprintf("history-%07d", i)),
			Seq:     1,
			Kind:    sos.KindPost,
			Created: created,
		}
		if _, err := aliceStore.Put(m); err != nil {
			t.Fatal(err)
		}
		if _, err := bobStore.Put(m); err != nil {
			t.Fatal(err)
		}
	}

	tracer := sos.NewTracer(0)
	delivered := make(chan sos.Ref, 16)
	alice, err := sos.NewNode(sos.NodeConfig{
		Creds:  aliceCreds,
		Medium: medium,
		Store:  aliceStore,
		Tracer: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	bob, err := sos.NewNode(sos.NodeConfig{
		Creds:  bobCreds,
		Medium: medium,
		Store:  bobStore,
		OnReceive: func(m *sos.Message, _ sos.UserID) {
			delivered <- m.Ref()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bob.Close()

	dbg, err := sos.NewDebugServer(sos.DebugServerConfig{Addr: "127.0.0.1:0", Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Close()

	// Prime the contact, then wait for the chunked first-contact summary
	// exchange to settle on both sides (the stream keeps arriving after
	// the first delivery).
	if _, err := alice.Post([]byte("priming post")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-delivered:
	case <-time.After(60 * time.Second):
		t.Fatal("priming post never delivered")
	}
	settleBy := time.Now().Add(120 * time.Second)
	for {
		_, _, aliceView := alice.SyncState()
		_, _, bobView := bob.SyncState()
		if aliceView >= authors && bobView >= authors {
			break
		}
		if time.Now().After(settleBy) {
			t.Fatalf("summary exchange did not settle (views %d/%d of %d)", aliceView, bobView, authors)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Steady-state delta rounds on the established link.
	for i := 0; i < 3; i++ {
		if _, err := alice.Post([]byte("delta round")); err != nil {
			t.Fatal(err)
		}
		select {
		case <-delivered:
		case <-time.After(30 * time.Second):
			t.Fatalf("delta round %d stalled", i)
		}
	}

	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get("http://" + dbg.Addr() + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dump struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Tid  uint64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatalf("/debug/trace is not valid trace_event JSON: %v", err)
	}

	// Resolve the contact track from the thread_name metadata, then
	// assert the whole session tree lives on that one tid.
	var contactTid uint64
	found := false
	for _, ev := range dump.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			if name, _ := ev.Args["name"].(string); name == "contact bob-device" {
				contactTid = ev.Tid
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no 'contact bob-device' track in the trace dump")
	}
	counts := map[string]int{}
	for _, ev := range dump.TraceEvents {
		if ev.Tid == contactTid && (ev.Ph == "X" || ev.Ph == "B") {
			counts[ev.Name]++
		}
	}
	if counts["handshake"] == 0 {
		t.Error("contact track has no handshake span")
	}
	if counts["contact"] == 0 {
		t.Error("contact track has no contact envelope span")
	}
	if counts["advertise.full"] == 0 {
		t.Error("contact track has no full advertisement (chunk 0) span")
	}
	// 100k entries at 4096 per chunk is 25 frames: chunk 0 rides the
	// advertisement, so at least 24 continuation chunks must appear.
	if counts["sync.chunk"] < 24 {
		t.Errorf("contact track has %d sync.chunk spans, want >= 24", counts["sync.chunk"])
	}
	if counts["advertise.delta"] == 0 {
		t.Error("contact track has no delta advertisement span after steady-state rounds")
	}
}
