package sos_test

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sos"
	"sos/internal/chaos"
)

// rejoinFleet is a fleet whose nodes can be killed and restarted with
// the same credentials and security directory — the harness for the
// offline-rotation scenario. Delivery books survive a restart so the
// test can wait on refs across a node's death.
type rejoinFleet struct {
	t      *testing.T
	cld    *sos.Cloud
	medium sos.Medium
	clk    *sos.VirtualClock

	mu    sync.Mutex
	nodes map[string]*sos.Node
	creds map[string]*sos.Credentials
	dirs  map[string]string
	seen  map[string]map[sos.Ref]int
	wake  chan struct{}
}

func (f *rejoinFleet) security(handle string) sos.SecurityConfig {
	return sos.SecurityConfig{
		Dir:    f.dirs[handle],
		NoSync: true,
		// Lab timescale: epochs measured in virtual minutes so an offline
		// window spans several rotations.
		RotationPeriod: time.Minute,
		OverlapWindow:  10 * time.Second,
	}
}

// start boots (or reboots) handle's node from its persistent identity
// and replay directory.
func (f *rejoinFleet) start(handle string) *sos.Node {
	f.t.Helper()
	f.mu.Lock()
	if f.creds[handle] == nil {
		creds, err := sos.Bootstrap(f.cld, handle)
		if err != nil {
			f.mu.Unlock()
			f.t.Fatalf("Bootstrap(%s): %v", handle, err)
		}
		f.creds[handle] = creds
		f.dirs[handle] = filepath.Join(f.t.TempDir(), handle)
		f.seen[handle] = make(map[sos.Ref]int)
	}
	book := f.seen[handle]
	f.mu.Unlock()

	n, err := sos.NewNode(sos.NodeConfig{
		Creds:            f.creds[handle],
		Medium:           f.medium,
		PeerName:         sos.PeerID(handle + "-device"),
		Clock:            f.clk,
		Security:         f.security(handle),
		HandshakeTimeout: 250 * time.Millisecond,
		ResyncInterval:   250 * time.Millisecond,
		OnReceive: func(m *sos.Message, _ sos.UserID) {
			f.mu.Lock()
			book[m.Ref()]++
			f.mu.Unlock()
			select {
			case f.wake <- struct{}{}:
			default:
			}
		},
	})
	if err != nil {
		f.t.Fatalf("NewNode(%s): %v", handle, err)
	}
	f.mu.Lock()
	f.nodes[handle] = n
	f.mu.Unlock()
	return n
}

func (f *rejoinFleet) kill(handle string) {
	f.t.Helper()
	f.mu.Lock()
	n := f.nodes[handle]
	delete(f.nodes, handle)
	f.mu.Unlock()
	if err := n.Close(); err != nil {
		f.t.Fatalf("Close(%s): %v", handle, err)
	}
}

// waitFor blocks until every named node's book holds every ref. While
// waiting it keeps virtual time flowing (a few virtual seconds per wall
// second): misbehavior decay, quarantine terms, and rotation periods are
// all measured on the injected clock, and a frozen clock would make a
// single honest-accident score permanent.
func (f *rejoinFleet) waitFor(refs []sos.Ref, handles []string, deadline time.Duration) {
	f.t.Helper()
	timeout := time.After(deadline)
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		f.mu.Lock()
		missing := 0
		for _, h := range handles {
			self := sos.NewUserID(h)
			for _, r := range refs {
				if r.Author != self && f.seen[h][r] == 0 {
					missing++
				}
			}
		}
		f.mu.Unlock()
		if missing == 0 {
			return
		}
		select {
		case <-f.wake:
		case <-tick.C:
			f.clk.Advance(250 * time.Millisecond)
		case <-timeout:
			f.mu.Lock()
			nodes := make(map[string]*sos.Node, len(f.nodes))
			for h, n := range f.nodes {
				nodes[h] = n
			}
			for _, h := range handles {
				f.t.Logf("node %s holds %d refs", h, len(f.seen[h]))
			}
			f.mu.Unlock()
			for h, n := range nodes {
				ms := n.Stats().Message
				f.t.Logf("node %s msg: recv=%d served=%d misbehave=%d quar=%d inflightExp=%d pullsSent=%d reconnects=%d prekeySent=%d prekeyRecv=%d prekeyRej=%d",
					h, ms.MessagesReceived, ms.MessagesServed, ms.MisbehaviorEvents, ms.Quarantines,
					ms.InflightExpired, ms.SummaryPullsSent, ms.Reconnects, ms.PrekeyBundlesSent, ms.PrekeyBundlesReceived, ms.PrekeyRejects)
				f.t.Logf("node %s secure: %+v adhoc: %+v", h, n.SecureStats(), n.Stats().Adhoc)
			}
			f.t.Fatalf("deliveries stalled: %d (node, ref) pairs missing", missing)
		}
	}
}

// TestSecureKillRejoinAfterRotation is the tentpole's acceptance
// scenario: a node goes dark, the surviving fleet rotates session keys
// several epochs ahead on the virtual clock, and on rejoin the node must
// re-handshake, re-sync everything it missed, and deliver new traffic —
// under a duplicating, reordering radio.
func TestSecureKillRejoinAfterRotation(t *testing.T) {
	clk := sos.NewVirtualClock(time.Unix(1700000000, 0))
	ca, err := sos.NewCA("Rotation Root CA", clk)
	if err != nil {
		t.Fatal(err)
	}
	cld := sos.NewCloud(ca, clk)
	prof, err := chaos.Preset(chaos.PresetDupReorder, 60*time.Second, 17)
	if err != nil {
		t.Fatal(err)
	}
	chz, err := chaos.Wrap(sos.NewMemMedium(), prof)
	if err != nil {
		t.Fatal(err)
	}
	defer chz.Close()

	f := &rejoinFleet{
		t:      t,
		cld:    cld,
		medium: chz,
		clk:    clk,
		nodes:  make(map[string]*sos.Node),
		creds:  make(map[string]*sos.Credentials),
		dirs:   make(map[string]string),
		seen:   make(map[string]map[sos.Ref]int),
		wake:   make(chan struct{}, 1),
	}
	handles := []string{"ana", "bo", "cyd"}
	for _, h := range handles {
		f.start(h)
	}
	defer func() {
		f.mu.Lock()
		nodes := make([]*sos.Node, 0, len(f.nodes))
		for _, n := range f.nodes {
			nodes = append(nodes, n)
		}
		f.mu.Unlock()
		for _, n := range nodes {
			n.Close()
		}
	}()

	// Round 1: everyone online, everyone hears everyone.
	var round1 []sos.Ref
	for _, h := range handles {
		m, err := f.nodes[h].Post([]byte("round 1 from " + h))
		if err != nil {
			t.Fatalf("Post(%s): %v", h, err)
		}
		round1 = append(round1, m.Ref())
	}
	f.waitFor(round1, handles, 30*time.Second)

	// cyd goes dark; the virtual clock runs several rotation periods
	// while the survivors keep talking, so their established sessions
	// ratchet multiple epochs past anything cyd ever held.
	f.kill("cyd")
	f.clk.Advance(5 * time.Minute)

	var round2 []sos.Ref
	for i := 0; i < 20; i++ {
		h := handles[i%2] // ana and bo only
		m, err := f.nodes[h].Post([]byte(fmt.Sprintf("round 2 #%d from %s", i, h)))
		if err != nil {
			t.Fatalf("Post(%s): %v", h, err)
		}
		round2 = append(round2, m.Ref())
	}
	f.waitFor(round2, []string{"ana", "bo"}, 30*time.Second)

	rotations := f.nodes["ana"].SecureStats().Rotations + f.nodes["bo"].SecureStats().Rotations
	if rotations < 1 {
		t.Fatalf("no session rotated across a 5-epoch offline window (rotations = %d)", rotations)
	}

	// cyd rejoins from its persisted identity and replay directory: it
	// must re-handshake fresh sessions and pull the full round-2 backlog.
	f.start("cyd")
	f.waitFor(round2, []string{"cyd"}, 30*time.Second)

	// The channel works both ways after the rejoin.
	m, err := f.nodes["cyd"].Post([]byte("back from the dead"))
	if err != nil {
		t.Fatalf("Post(cyd): %v", err)
	}
	f.waitFor([]sos.Ref{m.Ref()}, []string{"ana", "bo"}, 30*time.Second)

	// The prekey plane survived the restart too: pools replenished, and
	// the secure counters are visible on the metrics surface.
	for _, h := range handles {
		if got := f.nodes[h].PrekeysRemaining(); got <= 0 {
			t.Errorf("node %s prekey pool = %d, want > 0", h, got)
		}
		reg := sos.NewMetricsRegistry()
		sos.RegisterNodeMetrics(reg, sos.NodeMetrics{Middleware: f.nodes[h]})
		snap := reg.Snapshot()
		if snap["sos_secure_seals_total"] <= 0 {
			t.Errorf("node %s bridged no seals", h)
		}
		if _, ok := snap["sos_secure_rotations_total"]; !ok {
			t.Errorf("node %s missing rotations series", h)
		}
	}
}
